"""End-to-end tests of the adversarial conditions through the full stack.

Property tests for partition semantics (isolation while the cut is active,
byte conservation of cut drops, post-heal liveness), crash-recovery
regressions (stale-profile restore, digest-cache eviction for resurrected
nodes, sharded-engine bit-equivalence under crash churn), free-rider
containment and correlated community churn -- plus the zero-condition
equivalence of every new condition at the simtest level (the transport-level
golden pins live in ``test_transport_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro.data.queries import QueryWorkloadGenerator
from repro.data.synthetic import SyntheticConfig, generate_dataset
from repro.p3q.config import P3QConfig
from repro.p3q.protocol import P3QSimulation
from repro.simtest import run_scenario
from repro.simtest.spec import ChurnEvent, CommunityChurnEvent, DynamicsSpec, ScenarioSpec
from repro.simulator.conditions import AsymmetrySpec, PartitionSpec
from repro.simulator.transport import DELIVERED, REPLY_DROPPED

#: The fast spec of ``test_simtest`` restated here (the module is standalone).
FAST_SPEC = ScenarioSpec(
    num_users=18,
    num_items=120,
    num_tags=40,
    num_communities=3,
    mean_actions_per_user=16,
    network_size=8,
    storage=3,
    random_view_size=4,
    k=6,
    alpha=1.0,
    exchange_size=5,
    digest_bits=256,
    digest_hashes=4,
    lazy_cycles=3,
    eager_cycles=8,
    num_queries=6,
    seed=7,
)


def _small_simulation(config_overrides=None, num_users=30):
    config_kwargs = dict(
        network_size=8,
        storage=3,
        random_view_size=4,
        k=6,
        exchange_size=6,
        digest_bits=512,
        digest_hashes=4,
        seed=21,
    )
    config_kwargs.update(config_overrides or {})
    dataset = generate_dataset(
        SyntheticConfig(
            num_users=num_users,
            num_items=150,
            num_tags=45,
            num_communities=3,
            mean_actions_per_user=18,
            seed=13,
        )
    )
    return P3QSimulation(dataset, P3QConfig(**config_kwargs))


# ------------------------------------------------------------------ partition


class TestPartitionProperties:
    def test_no_message_crosses_an_active_cut(self):
        """Direct observation: every delivered wire event respects the cut."""
        partition = PartitionSpec(components=2, split_cycle=2, heal_cycle=5)
        simulation = _small_simulation(
            {"transport": "conditioned", "partition": partition}
        )
        transport = simulation.network.transport
        breaches = []

        def observer(event):
            if event.status in (DELIVERED, REPLY_DROPPED) and transport.partition_active():
                if transport.partition_component(
                    event.sender
                ) != transport.partition_component(event.receiver):
                    breaches.append(event)

        transport.add_observer(observer)
        simulation.bootstrap_random_views()
        simulation.run_lazy(8)
        assert not breaches
        assert transport.cut_drops > 0  # the cut actually saw traffic

    def test_partition_scenario_passes_all_invariants(self):
        """The checker stack (isolation + byte conservation) stays green."""
        spec = FAST_SPEC.but(
            transport="conditioned",
            partition=PartitionSpec(components=2, split_cycle=2, heal_cycle=6),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation
        assert "partition-isolation" in result.checked
        assert "byte-conservation" in result.checked

    def test_lazy_phase_partition_still_reaches_full_recall(self):
        """A cut confined to the lazy phase cannot wedge query processing."""
        partition = PartitionSpec(components=2, split_cycle=1, heal_cycle=4)
        simulation = _small_simulation(
            {"transport": "conditioned", "partition": partition}
        )
        simulation.bootstrap_random_views()
        simulation.run_lazy(6)  # global cycles 0..5: the cut is over by 4
        generator = QueryWorkloadGenerator(simulation.dataset, seed=5)
        queries = generator.generate(simulation.dataset.user_ids[:5])
        sessions = simulation.issue_queries(queries)
        simulation.run_eager(cycles=20)
        assert sessions
        for session in sessions.values():
            assert session.is_complete(), (
                f"query {session.query.query_id} stuck at coverage "
                f"{session.coverage:.3f} after a healed lazy-phase partition"
            )

    def test_held_envelopes_are_delivered_after_heal(self):
        """Nothing stays stuck in flight once the components merge."""
        spec = FAST_SPEC.but(
            transport="conditioned",
            delay_cycles=2,
            partition=PartitionSpec(components=2, split_cycle=3, heal_cycle=7),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation

    def test_permanent_partition_is_valid_and_contained(self):
        """A heal cycle beyond the horizon = a cut that never heals."""
        spec = FAST_SPEC.but(
            transport="conditioned",
            partition=PartitionSpec(components=3, split_cycle=1, heal_cycle=99),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation


# ------------------------------------------------------------- crash recovery


class TestCrashRecovery:
    def test_recovered_node_returns_with_pre_crash_profile(self):
        simulation = _small_simulation()
        node = simulation.nodes[0]
        profile = node.profile
        version = profile.version
        simulation.crash_users([0])
        # The dataset-side profile object mutates while the node is down
        # (what profile dynamics do in the fuzzer); recovery must roll the
        # node back to its snapshot.
        profile.add(9_999, 8_888)
        assert profile.version > version
        simulation.recover_users([0])
        assert profile.version == version
        assert not profile.has_item(9_999)
        assert simulation.network.is_online(0)

    def test_recovery_evicts_stale_digest_cache_entries(self):
        simulation = _small_simulation()
        cache = simulation.digest_cache
        profile = simulation.nodes[0].profile
        version = profile.version
        cache.digest_for(profile)
        simulation.crash_users([0])
        profile.add(9_999, 8_888)
        cache.digest_for(profile)  # cache now holds the doomed newer version
        simulation.recover_users([0])
        # The restored node is marked dirty; the cycle-boundary flush evicts.
        cached_before = cache.stats()["digests"]
        flushed = simulation.network.flush_dirty_profiles()
        assert 0 in flushed
        assert cache.stats()["digests"] == cached_before - 1
        assert cache.digest_for(profile).version == version

    def test_quiescent_crash_is_identical_to_resume(self):
        """No profile change while down => restore is skipped, bit for bit."""
        resume = FAST_SPEC.but(
            churn=(ChurnEvent(phase="lazy", cycle=1, fraction=0.3, rejoin_after=1),)
        )
        crash = FAST_SPEC.but(
            churn=(
                ChurnEvent(
                    phase="lazy", cycle=1, fraction=0.3, rejoin_after=1, mode="crash"
                ),
            )
        )
        first = run_scenario(resume)
        second = run_scenario(crash)
        assert first.ok and second.ok
        assert first.fingerprint == second.fingerprint

    def test_crash_with_dynamics_perturbs_the_run(self):
        """With profile changes while down, crash recovery must diverge."""
        dynamics = DynamicsSpec(at_cycle=1, change_fraction=0.5)
        resume = FAST_SPEC.but(
            churn=(ChurnEvent(phase="lazy", cycle=1, fraction=0.4, rejoin_after=1),),
            dynamics=dynamics,
        )
        crash = resume.but(
            churn=(
                ChurnEvent(
                    phase="lazy", cycle=1, fraction=0.4, rejoin_after=1, mode="crash"
                ),
            )
        )
        first = run_scenario(resume)
        second = run_scenario(crash)
        assert first.ok, first.violation
        assert second.ok, second.violation
        assert first.fingerprint != second.fingerprint

    def test_crash_spec_is_bit_identical_across_worker_counts(self):
        """The sharded engine pin: workers=2 runs the same crash schedule."""
        spec = FAST_SPEC.but(
            workers=2,
            churn=(
                ChurnEvent(
                    phase="lazy", cycle=1, fraction=0.4, rejoin_after=1, mode="crash"
                ),
            ),
            dynamics=DynamicsSpec(at_cycle=1, change_fraction=0.5),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation
        assert "worker-count-equivalence" in result.checked


# ---------------------------------------------------------------- free riders


class TestFreeRiders:
    def test_free_rider_scenario_passes_containment(self):
        result = run_scenario(FAST_SPEC.but(free_rider_fraction=0.3))
        assert result.ok, result.violation
        assert "free-rider-containment" in result.checked

    def test_free_riders_are_seeded_and_deterministic(self):
        first = run_scenario(FAST_SPEC.but(free_rider_fraction=0.3))
        second = run_scenario(FAST_SPEC.but(free_rider_fraction=0.3))
        assert first.fingerprint == second.fingerprint

    def test_free_riders_actually_perturb_the_run(self):
        base = run_scenario(FAST_SPEC)
        riders = run_scenario(FAST_SPEC.but(free_rider_fraction=0.5))
        assert riders.ok, riders.violation
        assert base.fingerprint != riders.fingerprint

    def test_fraction_rounding_to_zero_nodes_is_bit_identical(self):
        """18 users * 0.02 rounds to zero riders: no stream is consumed."""
        base = run_scenario(FAST_SPEC)
        zero = run_scenario(FAST_SPEC.but(free_rider_fraction=0.02))
        assert zero.ok, zero.violation
        assert base.fingerprint == zero.fingerprint


# ------------------------------------------------------------ community churn


class TestCommunityChurn:
    def test_community_churn_scenario_passes(self):
        spec = FAST_SPEC.but(
            community_churn=(
                CommunityChurnEvent(phase="eager", cycle=1, community=1, rejoin_after=2),
            )
        )
        result = run_scenario(spec)
        assert result.ok, result.violation

    def test_community_crash_churn_passes(self):
        spec = FAST_SPEC.but(
            community_churn=(
                CommunityChurnEvent(
                    phase="lazy", cycle=1, community=0, rejoin_after=1, mode="crash"
                ),
            ),
            dynamics=DynamicsSpec(at_cycle=1, change_fraction=0.4),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation

    def test_community_churn_perturbs_the_run(self):
        base = run_scenario(FAST_SPEC)
        churned = run_scenario(
            FAST_SPEC.but(
                community_churn=(
                    CommunityChurnEvent(phase="eager", cycle=1, community=0),
                )
            )
        )
        assert churned.ok, churned.violation
        assert base.fingerprint != churned.fingerprint

    def test_empty_schedule_is_bit_identical(self):
        base = run_scenario(FAST_SPEC)
        empty = run_scenario(FAST_SPEC.but(community_churn=()))
        assert base.fingerprint == empty.fingerprint


# ------------------------------------------------- zero-condition equivalence


class TestZeroConditionEquivalence:
    """Every condition's zero form collapses to the direct wire, bit for bit.

    These run through the simtest runner, whose zero-condition-equivalence
    check compares against an explicitly direct twin; the assertions below
    additionally pin the fingerprints against the plain direct spec.
    """

    def _direct_fingerprint(self):
        result = run_scenario(FAST_SPEC)
        assert result.ok
        return result.fingerprint

    def test_conditioned_with_no_conditions(self):
        result = run_scenario(FAST_SPEC.but(transport="conditioned"))
        assert result.ok, result.violation
        assert "zero-condition-equivalence" in result.checked
        assert result.fingerprint == self._direct_fingerprint()

    def test_null_asymmetry_spec(self):
        result = run_scenario(
            FAST_SPEC.but(transport="conditioned", asymmetry=AsymmetrySpec())
        )
        assert result.ok, result.violation
        assert "zero-condition-equivalence" in result.checked
        assert result.fingerprint == self._direct_fingerprint()

    def test_out_of_horizon_partition_window(self):
        """A partition is never 'zero', but one after the horizon never
        activates -- it must not consume randomness either."""
        spec = FAST_SPEC.but(
            transport="conditioned",
            partition=PartitionSpec(components=2, split_cycle=10, heal_cycle=999),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation
        assert result.fingerprint == self._direct_fingerprint()


# --------------------------------------------------------------- spec guards


class TestAdversarialSpecValidation:
    def test_churn_mode_is_validated(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            ChurnEvent(phase="lazy", cycle=1, fraction=0.2, mode="explode")

    def test_community_churn_event_is_validated(self):
        with pytest.raises(ValueError, match="phase must be lazy or eager"):
            CommunityChurnEvent(phase="warm", cycle=0, community=0)
        with pytest.raises(ValueError, match="community must be non-negative"):
            CommunityChurnEvent(phase="lazy", cycle=0, community=-1)
        with pytest.raises(ValueError, match="mode must be one of"):
            CommunityChurnEvent(phase="lazy", cycle=0, community=0, mode="burn")

    def test_spec_rejects_unknown_community(self):
        with pytest.raises(ValueError, match="does not exist"):
            FAST_SPEC.but(
                community_churn=(
                    CommunityChurnEvent(phase="lazy", cycle=1, community=9),
                )
            )

    def test_spec_rejects_conditions_without_conditioned_transport(self):
        with pytest.raises(ValueError, match="use 'conditioned'"):
            FAST_SPEC.but(partition=PartitionSpec(split_cycle=1, heal_cycle=2))
        with pytest.raises(ValueError, match="use 'conditioned'"):
            FAST_SPEC.but(transport="lossy", asymmetry=AsymmetrySpec(nat_fraction=0.1))

    def test_spec_rejects_partition_split_outside_horizon(self):
        with pytest.raises(ValueError, match="split"):
            FAST_SPEC.but(
                transport="conditioned",
                partition=PartitionSpec(split_cycle=50, heal_cycle=60),
            )

    def test_spec_rejects_bad_free_rider_fraction(self):
        with pytest.raises(ValueError, match="free_rider_fraction"):
            FAST_SPEC.but(free_rider_fraction=1.2)
