"""Tests for the centralized reference and the strawman strategies."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CentralizedTopK,
    OnDemandPollingStrategy,
    StoreEverythingStrategy,
    inverted_list_storage_estimate,
)
from repro.data.queries import QueryWorkloadGenerator
from repro.p3q.scoring import partial_scores


@pytest.fixture(scope="module")
def central(synthetic_dataset):
    return CentralizedTopK(synthetic_dataset, network_size=20)


@pytest.fixture(scope="module")
def queries(synthetic_dataset):
    return QueryWorkloadGenerator(synthetic_dataset, seed=5).generate(
        synthetic_dataset.user_ids[:8]
    )


class TestCentralized:
    def test_scores_include_querier_and_neighbours(self, central, synthetic_dataset, queries):
        query = queries[0]
        scores = central.relevance_scores(query)
        profiles = [
            synthetic_dataset.profile(uid)
            for uid in central.personal_network_of(query.querier)
        ] + [synthetic_dataset.profile(query.querier)]
        assert scores == partial_scores(profiles, query)

    def test_top_k_sorted_by_score(self, central, queries):
        top = central.top_k(queries[0], k=10)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_source_item_is_usually_highly_ranked(self, central, queries):
        """The query was generated from an item of the querier's own profile,
        so that item has a positive score and should appear in the results of
        most queries (the paper's workload-generation rationale)."""
        hits = 0
        for query in queries:
            items = central.top_k_items(query, k=10)
            if query.source_item in items:
                hits += 1
        assert hits >= len(queries) // 2

    def test_relevant_items_keyed_by_query_id(self, central, queries):
        references = central.relevant_items(queries, k=5)
        assert set(references) == {query.query_id for query in queries}
        assert all(len(items) <= 5 for items in references.values())

    def test_reuses_provided_ideal_index(self, synthetic_dataset, synthetic_ideal):
        central = CentralizedTopK(synthetic_dataset, network_size=20, ideal=synthetic_ideal)
        assert central.ideal is synthetic_ideal

    def test_inverted_list_estimate_positive(self, synthetic_dataset, synthetic_ideal):
        estimate = inverted_list_storage_estimate(synthetic_dataset, synthetic_ideal)
        assert estimate["inverted_lists"] > 0
        assert estimate["entries"] >= estimate["inverted_lists"]


class TestStrategies:
    def test_store_everything_matches_centralized(self, synthetic_dataset, synthetic_ideal, central, queries):
        strategy = StoreEverythingStrategy(synthetic_dataset, synthetic_ideal)
        for query in queries[:4]:
            assert strategy.top_k(query, k=10) == central.top_k(query, k=10)

    def test_store_everything_cost_is_storage_heavy(self, synthetic_dataset, synthetic_ideal, queries):
        strategy = StoreEverythingStrategy(synthetic_dataset, synthetic_ideal)
        cost = strategy.cost(queries[0])
        assert cost.storage_bytes > 0
        assert cost.query_bytes == 0
        assert cost.availability == 1.0

    def test_polling_with_everyone_online_matches_centralized(
        self, synthetic_dataset, synthetic_ideal, central, queries
    ):
        strategy = OnDemandPollingStrategy(synthetic_dataset, synthetic_ideal)
        for query in queries[:4]:
            assert strategy.top_k(query, k=10) == central.top_k(query, k=10)

    def test_polling_cost_is_query_heavy(self, synthetic_dataset, synthetic_ideal, queries):
        strategy = OnDemandPollingStrategy(synthetic_dataset, synthetic_ideal)
        cost = strategy.cost(queries[0])
        assert cost.storage_bytes == 0
        assert cost.query_bytes > 0
        assert cost.round_trips == len(synthetic_ideal.neighbour_ids(queries[0].querier))

    def test_polling_loses_offline_contributions(
        self, synthetic_dataset, synthetic_ideal, queries
    ):
        query = queries[0]
        neighbours = synthetic_ideal.neighbour_ids(query.querier)
        offline = set(neighbours[: len(neighbours) // 2])
        degraded = OnDemandPollingStrategy(synthetic_dataset, synthetic_ideal, offline=offline)
        cost = degraded.cost(query)
        assert cost.availability < 1.0
        assert set(degraded.available_neighbours(query)).isdisjoint(offline)
