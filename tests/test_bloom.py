"""Tests for the Bloom-filter profile digests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom import (
    PAPER_DIGEST_BITS,
    BloomFilter,
    optimal_num_bits,
    optimal_num_hashes,
)


class TestSizing:
    def test_paper_digest_size_is_20_kbit(self):
        assert PAPER_DIGEST_BITS == 20_000

    def test_optimal_bits_grow_with_capacity(self):
        assert optimal_num_bits(1000, 0.001) > optimal_num_bits(100, 0.001)

    def test_optimal_bits_grow_with_precision(self):
        assert optimal_num_bits(100, 0.0001) > optimal_num_bits(100, 0.01)

    def test_optimal_hashes_at_least_one(self):
        assert optimal_num_hashes(8, 1_000_000) == 1

    def test_invalid_fp_rate_rejected(self):
        with pytest.raises(ValueError):
            optimal_num_bits(100, 1.5)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 10)

    def test_paper_parameters_give_low_fp_rate(self):
        """20 Kbit / 14 hashes at ~250 items: the paper quotes ~0.1% FP."""
        bloom = BloomFilter(num_bits=PAPER_DIGEST_BITS, num_hashes=14)
        for item in range(250):
            bloom.add(item)
        assert bloom.estimated_false_positive_rate() < 0.005


class TestBloomFilter:
    def test_rejects_invalid_construction(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(num_hashes=0)

    def test_no_false_negatives_simple(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3)
        for item in range(20):
            bloom.add(item)
        assert all(item in bloom for item in range(20))

    def test_unseen_items_mostly_absent(self):
        bloom = BloomFilter(num_bits=4096, num_hashes=6)
        bloom.update(range(50))
        false_positives = sum(1 for item in range(1000, 2000) if item in bloom)
        assert false_positives < 50

    def test_intersects(self):
        bloom = BloomFilter.from_items([1, 2, 3], num_bits=512, num_hashes=4)
        assert bloom.intersects([99, 3])
        assert not bloom.intersects([])

    def test_fill_ratio_increases_with_inserts(self):
        bloom = BloomFilter(num_bits=512, num_hashes=4)
        empty_ratio = bloom.fill_ratio()
        bloom.update(range(30))
        assert bloom.fill_ratio() > empty_ratio

    def test_estimated_fp_rate_zero_when_empty(self):
        assert BloomFilter(num_bits=64, num_hashes=2).estimated_false_positive_rate() == 0.0

    def test_size_in_bytes(self):
        assert BloomFilter(num_bits=20_000, num_hashes=14).size_in_bytes == 2_500

    def test_equality_and_copy(self):
        a = BloomFilter.from_items([1, 2, 3], num_bits=256, num_hashes=3)
        b = a.copy()
        assert a == b
        b.add(4)
        assert a != b

    def test_for_capacity_hits_target_fp_rate(self):
        bloom = BloomFilter.for_capacity(200, false_positive_rate=0.01)
        bloom.update(range(200))
        assert bloom.estimated_false_positive_rate() < 0.05

    def test_approximate_count_tracks_adds(self):
        bloom = BloomFilter(num_bits=128, num_hashes=2)
        bloom.update(range(7))
        assert bloom.approximate_count == 7


class TestBloomProperties:
    @given(st.sets(st.integers(), max_size=200))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        """Every inserted key must be reported as present, whatever the keys."""
        bloom = BloomFilter(num_bits=2048, num_hashes=5)
        bloom.update(items)
        assert all(item in bloom for item in items)

    @given(
        st.sets(st.integers(0, 10_000), min_size=1, max_size=100),
        st.sets(st.integers(0, 10_000), min_size=1, max_size=100),
    )
    @settings(max_examples=50)
    def test_intersects_never_misses_a_real_intersection(self, stored, probed):
        bloom = BloomFilter(num_bits=4096, num_hashes=5)
        bloom.update(stored)
        if stored & probed:
            assert bloom.intersects(probed)

    @given(st.sets(st.tuples(st.integers(), st.integers()), max_size=100))
    @settings(max_examples=30)
    def test_works_with_tuple_keys(self, actions):
        bloom = BloomFilter(num_bits=4096, num_hashes=5)
        bloom.update(actions)
        assert all(action in bloom for action in actions)
