"""Equivalence of the bit-packed Bloom filter with the legacy filter.

The performance overhaul replaced the seed's ``hashlib``-per-probe filter
(:class:`repro.bloom._legacy.LegacyBloomFilter`) with the bit-packed
:class:`repro.bloom.BloomFilter`.  The two use different hash functions, so
their bit patterns differ -- but every *guarantee* and every *deterministic
observable* must match:

* no false negatives, for any key type, under any insertion order;
* identical sizing model (``size_in_bytes``, insert counting, estimated
  false-positive rate for the same geometry and load);
* ``intersects`` never misses a real intersection;
* comparable measured false-positive behaviour at the paper's geometry.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.bloom import BloomFilter, hash_bases
from repro.bloom._legacy import LegacyBloomFilter

GEOMETRY = dict(num_bits=4096, num_hashes=5)


class TestBehaviouralEquivalence:
    @given(st.sets(st.integers(), max_size=200))
    @settings(max_examples=50)
    def test_both_filters_have_no_false_negatives(self, items):
        fast = BloomFilter(**GEOMETRY)
        legacy = LegacyBloomFilter(**GEOMETRY)
        fast.update(items)
        legacy.update(items)
        for item in items:
            assert item in fast
            assert item in legacy

    @given(st.sets(st.tuples(st.integers(), st.integers()), max_size=100))
    @settings(max_examples=30)
    def test_tuple_keys_match_legacy_guarantee(self, actions):
        """Non-integer keys (tagging actions) keep the no-false-negative law."""
        fast = BloomFilter(**GEOMETRY)
        legacy = LegacyBloomFilter(**GEOMETRY)
        fast.update(actions)
        legacy.update(actions)
        assert all(action in fast for action in actions)
        assert all(action in legacy for action in actions)

    @given(
        st.sets(st.integers(0, 10_000), min_size=1, max_size=100),
        st.sets(st.integers(0, 10_000), min_size=1, max_size=100),
    )
    @settings(max_examples=50)
    def test_intersects_never_misses_like_legacy(self, stored, probed):
        fast = BloomFilter(**GEOMETRY)
        legacy = LegacyBloomFilter(**GEOMETRY)
        fast.update(stored)
        legacy.update(stored)
        if stored & probed:
            assert fast.intersects(probed)
            assert legacy.intersects(probed)

    @given(st.sets(st.integers(), max_size=150))
    @settings(max_examples=50)
    def test_identical_accounting(self, items):
        """Count, wire size and FP estimate depend only on geometry + load."""
        fast = BloomFilter(**GEOMETRY)
        legacy = LegacyBloomFilter(**GEOMETRY)
        fast.update(items)
        legacy.update(items)
        assert fast.approximate_count == legacy.approximate_count
        assert fast.size_in_bytes == legacy.size_in_bytes
        assert (
            fast.estimated_false_positive_rate()
            == legacy.estimated_false_positive_rate()
        )

    def test_paper_geometry_reports_2500_bytes_each(self):
        assert BloomFilter(20_000, 14).size_in_bytes == 2_500
        assert LegacyBloomFilter(20_000, 14).size_in_bytes == 2_500


class TestFalsePositiveBehaviour:
    def test_measured_fp_rates_comparable_under_fixed_seed(self):
        """At the paper's geometry both filters stay near the predicted rate.

        The bit patterns differ (different hash families), so equivalence is
        statistical: both measured rates must be within a small factor of the
        analytical estimate, and neither may blow past the seed's quality.
        """
        rng = random.Random(20100322)
        members = rng.sample(range(1_000_000), 250)
        probes = [x for x in rng.sample(range(1_000_000, 2_000_000), 20_000)]

        fast = BloomFilter.from_items(members, num_bits=20_000, num_hashes=14)
        legacy = LegacyBloomFilter.from_items(members, num_bits=20_000, num_hashes=14)

        fast_fp = sum(1 for x in probes if x in fast) / len(probes)
        legacy_fp = sum(1 for x in probes if x in legacy) / len(probes)
        predicted = fast.estimated_false_positive_rate()

        assert fast_fp < max(10 * predicted, 0.005)
        assert legacy_fp < max(10 * predicted, 0.005)

    def test_fill_ratio_statistically_equivalent(self):
        """Same load -> same expected fill; both must land near it."""
        items = list(range(500))
        fast = BloomFilter.from_items(items, **GEOMETRY)
        legacy = LegacyBloomFilter.from_items(items, **GEOMETRY)
        assert abs(fast.fill_ratio() - legacy.fill_ratio()) < 0.05


class TestHashBases:
    def test_bases_are_deterministic_and_cached(self):
        assert hash_bases(12345) == hash_bases(12345)
        assert hash_bases((1, 2)) == hash_bases((1, 2))

    def test_h2_is_odd_for_all_key_types(self):
        for key in (0, 1, -17, 2**63, (3, 4), "item"):
            _, h2 = hash_bases(key)
            assert h2 % 2 == 1

    def test_distinct_keys_get_distinct_bases(self):
        bases = {hash_bases(key) for key in range(1000)}
        assert len(bases) == 1000

    def test_huge_integers_fall_back_safely(self):
        """Ints beyond the 64-bit range use the blake2b path, no truncation."""
        a, b = 2**100, 2**100 + (1 << 70)
        assert hash_bases(a) != hash_bases(b)

    def test_no_aliasing_across_the_64_bit_boundary(self):
        """``k`` and ``k + 2**64`` (and negatives) must not share bases.

        Regression test: a fast path that masks with ``& (2**64 - 1)``
        would give ``-1`` and ``2**64 - 1`` identical probe positions -- a
        deterministic false positive the legacy filter never produced.
        """
        assert hash_bases(-1) != hash_bases(2**64 - 1)
        assert hash_bases(5) != hash_bases(5 + 2**64)
        bloom = BloomFilter(**GEOMETRY)
        bloom.add(-1)
        assert -1 in bloom

    def test_equal_but_distinct_type_keys_do_not_conflate(self):
        """``1``/``True``/``1.0`` are equal dict keys but must hash apart.

        Regression test: the cache used to key by raw value, so whichever
        of the three was seen first decided everyone's bases -- making the
        bases depend on cache warm-up order and breaking the no-false-
        negative guarantee across ``clear_hash_cache()``.
        """
        from repro.bloom import clear_hash_cache

        clear_hash_cache()
        hash_bases(1)  # warm the cache with the int first
        warm = (hash_bases(True), hash_bases(1.0), hash_bases(1))
        clear_hash_cache()
        cold = (hash_bases(True), hash_bases(1.0), hash_bases(1))
        assert warm == cold
        assert warm[0] != warm[2] and warm[1] != warm[2]

    def test_bool_keys_survive_cache_clear(self):
        """An added key stays present whatever the cache state."""
        from repro.bloom import clear_hash_cache

        clear_hash_cache()
        hash_bases(1)  # poison attempt: int twin cached first
        bloom = BloomFilter(**GEOMETRY)
        bloom.add(True)
        clear_hash_cache()
        assert True in bloom

    def test_unhashable_keys_still_work_uncached(self):
        """The legacy filter accepted any repr-able key; so must we."""
        bloom = BloomFilter(**GEOMETRY)
        bloom.add([1, 2, 3])
        assert [1, 2, 3] in bloom
