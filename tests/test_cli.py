"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_has_a_description(self):
        for name, (description, needs_workload, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)
            assert isinstance(needs_workload, bool)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scale == "small"
        assert args.experiments == ["fig2"]
        assert args.output is None

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])

    def test_no_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_analysis_experiment(self, capsys):
        assert main(["analysis", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "R(alpha)" in out

    def test_runs_table1_and_writes_output(self, tmp_path, capsys):
        assert main(["table1", "--scale", "tiny", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert "lambda=1" in (tmp_path / "table1.txt").read_text()

    def test_runs_workload_experiment_at_tiny_scale(self, capsys):
        assert main(["fig4", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
