"""Columnar node state: store, digest matrix, zero-copy object crossing.

The contract under test (see ``repro/data/columnar.py``) is that the
columnar representation is an *encoding*, never a behaviour change:

* a :class:`ColumnarStore` holds exactly the action lists the generator
  emitted (same order, same distinct-item sequence, same versions);
* :class:`DigestMatrix` rows are byte-identical to ``BloomFilter``s built
  item by item, and probing a row with the memoized masks answers exactly
  ``item in bloom``;
* :meth:`UserProfile.from_columnar` / :meth:`BloomFilter.from_columnar`
  reproduce the object pipeline bit for bit, so a :class:`ColumnarDataset`
  is indistinguishable from the object dataset it replaces.
"""

from __future__ import annotations

import pytest

from repro.bloom import BloomFilter
from repro.data import (
    ColumnarDataset,
    ColumnarStore,
    DigestMatrix,
    SyntheticConfig,
    SyntheticTraceGenerator,
    UserProfile,
    generate_dataset,
)
from repro.data.columnar import geometry_mask_cache, mask_int

CONFIG = SyntheticConfig(
    num_users=40,
    num_items=260,
    num_tags=80,
    num_communities=4,
    mean_actions_per_user=18,
    seed=23,
)

BITS, HASHES = 1_024, 4


@pytest.fixture(scope="module")
def store() -> ColumnarStore:
    generator = SyntheticTraceGenerator(CONFIG)
    return ColumnarStore.from_action_stream(generator.iter_user_actions())


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(CONFIG)


# ------------------------------------------------------------------- the store


class TestColumnarStore:
    def test_rows_mirror_the_generated_action_lists(self, store, dataset):
        assert len(store) == len(dataset)
        raw = dict(SyntheticTraceGenerator(CONFIG).iter_user_actions())
        for row, uid in store.iter_rows():
            profile = dataset.profile(uid)
            # Stored order is the exact generation order; the profile's set
            # holds the same actions (its own iteration order is pinned by
            # the from_columnar crossing test below).
            assert store.actions_of_row(row) == raw[uid]
            assert set(store.actions_of_row(row)) == set(profile)
            assert store.versions[row] == profile.version

    def test_distinct_items_keep_first_seen_order(self, store):
        for row in range(len(store)):
            seen = []
            for item, _tag in store.actions_of_row(row):
                if item not in seen:
                    seen.append(item)
            assert list(store.distinct_items_of_row(row)) == seen

    def test_row_of_dense_and_sparse_ids(self):
        dense = ColumnarStore.from_action_stream([(0, [(1, 2)]), (1, [(3, 4)])])
        assert dense.row_of(1) == 1
        assert dense.row_of(7) is None
        sparse = ColumnarStore.from_action_stream([(5, [(1, 2)]), (90, [(3, 4)])])
        assert sparse.row_of(5) == 0
        assert sparse.row_of(90) == 1
        assert sparse.row_of(0) is None

    def test_from_dataset_snapshots_live_versions(self, dataset):
        snapshot = ColumnarStore.from_dataset(dataset)
        for row, uid in snapshot.iter_rows():
            assert snapshot.versions[row] == dataset.profile(uid).version

    def test_max_item_tracks_the_universe(self, store, dataset):
        assert store.max_item == max(
            item for p in dataset.profiles() for item, _tag in p
        )
        assert ColumnarStore().max_item == -1

    def test_from_cache_arrays_equals_streaming_construction(self, store):
        uids = list(store.uids)
        counts = [
            store.offsets[row + 1] - store.offsets[row] for row in range(len(store))
        ]
        adopted = ColumnarStore.from_cache_arrays(
            uids, counts, store.items, store.tags
        )
        assert list(adopted.uids) == uids
        for row in range(len(store)):
            assert adopted.actions_of_row(row) == store.actions_of_row(row)
            assert list(adopted.distinct_items_of_row(row)) == list(
                store.distinct_items_of_row(row)
            )
            assert adopted.versions[row] == store.versions[row]


# ----------------------------------------------------------------- probe masks


class TestProbeMasks:
    def test_mask_int_matches_bloom_membership(self, store):
        bloom = BloomFilter(num_bits=BITS, num_hashes=HASHES)
        members = list(store.distinct_items_of_row(0))
        for item in members:
            bloom.add(item)
        for item in range(300):
            mask = mask_int(item, BITS, HASHES)
            assert (bloom.raw_bits & mask == mask) == (item in bloom)

    def test_geometry_cache_is_filled_by_mask_int(self):
        cache = geometry_mask_cache(BITS, HASHES)
        value = mask_int(123_456, BITS, HASHES)
        assert cache[123_456] == value


# --------------------------------------------------------------- digest matrix


class TestDigestMatrix:
    def test_rows_are_byte_identical_to_object_filters(self, store):
        matrix = DigestMatrix(len(store), BITS, HASHES)
        assert matrix.build_rows(store) == len(store)
        for row in range(len(store)):
            bloom = BloomFilter.from_items(
                store.distinct_items_of_row(row), num_bits=BITS, num_hashes=HASHES
            )
            assert matrix.row_bits_int(row) == bloom.raw_bits
            assert matrix.row_bytes_of(row) == bloom.raw_bits.to_bytes(
                matrix.row_bytes, "little"
            )
            assert matrix.row_version(row) == store.versions[row]

    def test_unbuilt_rows_carry_version_minus_one(self, store):
        matrix = DigestMatrix(len(store), BITS, HASHES)
        assert matrix.built_count() == 0
        assert matrix.build_rows(store, rows=[0, 2]) == 2
        assert matrix.row_version(0) >= 0
        assert matrix.row_version(1) == -1
        assert matrix.built_count() == 2

    def test_set_row_from_items_rebuilds_in_place(self, store):
        matrix = DigestMatrix(len(store), BITS, HASHES)
        matrix.build_rows(store)
        matrix.set_row_from_items(3, [1, 2, 3], version=99)
        expected = BloomFilter.from_items([1, 2, 3], num_bits=BITS, num_hashes=HASHES)
        assert matrix.row_bits_int(3) == expected.raw_bits
        assert matrix.row_version(3) == 99

    def test_shared_matrix_same_bytes_and_clean_close(self, store):
        local = DigestMatrix(len(store), BITS, HASHES)
        shared = DigestMatrix(len(store), BITS, HASHES, shared=True)
        try:
            local.build_rows(store)
            shared.build_rows(store)
            for row in range(len(store)):
                assert shared.row_bytes_of(row) == local.row_bytes_of(row)
        finally:
            shared.close()
            shared.close()  # idempotent

    def test_from_columnar_filter_probes_like_the_original(self, store):
        matrix = DigestMatrix(len(store), BITS, HASHES)
        matrix.build_rows(store)
        row = 5
        items = list(store.distinct_items_of_row(row))
        bloom = BloomFilter.from_columnar(
            BITS, HASHES, matrix.row_bytes_of(row), len(items)
        )
        reference = BloomFilter.from_items(items, num_bits=BITS, num_hashes=HASHES)
        assert bloom.raw_bits == reference.raw_bits
        assert bloom.approximate_count == len(items)
        assert all(item in bloom for item in items)


# ------------------------------------------------------------- object crossing


class TestObjectCrossing:
    def test_profile_from_columnar_is_state_identical(self, store, dataset):
        for uid in dataset.user_ids:
            reference = dataset.profile(uid)
            materialized = UserProfile.from_columnar(store, uid)
            # Order-sensitive: set iteration order is what downstream
            # deterministic runs observe.
            assert list(materialized) == list(reference)
            assert materialized.version == reference.version

    def test_profile_from_columnar_unknown_user(self, store):
        with pytest.raises(KeyError):
            UserProfile.from_columnar(store, 10_000)

    def test_columnar_dataset_equals_object_dataset(self, store, dataset):
        columnar = ColumnarDataset(store)
        assert len(columnar) == len(dataset)
        assert columnar.user_ids == dataset.user_ids
        assert 0 in columnar and 10_000 not in columnar
        fingerprint = [(p.user_id, list(p), p.version) for p in columnar.profiles()]
        reference = [(p.user_id, list(p), p.version) for p in dataset.profiles()]
        assert fingerprint == reference

    def test_columnar_dataset_materializes_lazily(self, store):
        columnar = ColumnarDataset(store)
        assert not columnar._profiles
        columnar.profile(0)
        assert set(columnar._profiles) == {0}

    def test_copy_preserves_materialized_divergence(self, store):
        columnar = ColumnarDataset(store)
        profile = columnar.profile(0)
        profile.add(9_999, 1)
        clone = columnar.copy()
        assert list(clone.profile(0)) == list(profile)
        assert clone.profile(0) is not profile
        # Untouched users stay columnar in the clone.
        assert set(clone._profiles) == {0}
