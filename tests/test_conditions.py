"""Unit tests for the adversarial network conditions.

Covers the hardened constructors (:class:`PartitionSpec`,
:class:`AsymmetrySpec`, :class:`ConditionedTransport`, the ``P3QConfig``
fields riding them), the partition-cut semantics at the transport level
(accounted drops, held in-flight envelopes, balanced seeded components) and
the asymmetric-link semantics (per-direction degradation, NAT inbound
blocks, extra loss/delay on degraded links).
"""

from __future__ import annotations

import pytest

from repro.p3q.config import P3QConfig
from repro.p3q.node import P3QNode
from repro.simulator.conditions import (
    AsymmetrySpec,
    ConditionedTransport,
    PartitionSpec,
    validate_fraction,
)
from repro.simulator.network import Network
from repro.simulator.transport import (
    DEFERRED,
    DELIVERED,
    DROPPED,
    UNREACHABLE,
    VIEW_RANDOM,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    make_transport,
)


def _wire(transport, tiny_dataset):
    """A network of P3Q nodes over ``transport``; returns (network, nodes)."""
    config = P3QConfig(
        network_size=4,
        storage=2,
        random_view_size=3,
        digest_bits=1_024,
        digest_hashes=4,
        seed=3,
    )
    network = Network(transport=transport)
    nodes = {}
    for profile in tiny_dataset.profiles():
        node = P3QNode(profile, config)
        nodes[node.node_id] = node
        network.add_node(node)
    return network, nodes


def _digest_ad(node):
    return DigestAdvertisement(digests=(node.own_digest(),), view=VIEW_RANDOM)


def _cross_pair(transport, nodes):
    """A (sender, receiver) pair on opposite sides of the partition."""
    ids = sorted(nodes)
    for sender in ids:
        for receiver in ids:
            if sender != receiver and transport.partition_component(
                sender
            ) != transport.partition_component(receiver):
                return sender, receiver
    raise AssertionError("no cross-component pair found")


def _same_pair(transport, nodes):
    ids = sorted(nodes)
    for sender in ids:
        for receiver in ids:
            if sender != receiver and transport.partition_component(
                sender
            ) == transport.partition_component(receiver):
                return sender, receiver
    raise AssertionError("no same-component pair found")


# ----------------------------------------------------------------- validation


class TestValidateFraction:
    def test_accepts_boundaries(self):
        assert validate_fraction("f", 0) == 0.0
        assert validate_fraction("f", 1) == 1.0
        assert validate_fraction("f", 0.25) == 0.25

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), float("inf")])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            validate_fraction("f", bad)

    @pytest.mark.parametrize("bad", [True, None, "0.5"])
    def test_rejects_non_numbers(self, bad):
        with pytest.raises(TypeError, match="must be a number"):
            validate_fraction("f", bad)


class TestPartitionSpecValidation:
    def test_defaults_are_valid(self):
        spec = PartitionSpec()
        assert spec.components == 2 and spec.heal_cycle > spec.split_cycle

    def test_rejects_single_component(self):
        with pytest.raises(ValueError, match="components must be >= 2"):
            PartitionSpec(components=1)

    def test_rejects_bool_components(self):
        with pytest.raises(TypeError, match="components must be an int"):
            PartitionSpec(components=True)

    def test_rejects_negative_split(self):
        with pytest.raises(ValueError, match="split_cycle must be >= 0"):
            PartitionSpec(split_cycle=-1, heal_cycle=2)

    @pytest.mark.parametrize("split,heal", [(3, 3), (3, 2), (5, 0)])
    def test_rejects_heal_before_split(self, split, heal):
        with pytest.raises(ValueError, match="heal_cycle must come strictly after"):
            PartitionSpec(split_cycle=split, heal_cycle=heal)


class TestAsymmetrySpecValidation:
    def test_null_spec(self):
        assert AsymmetrySpec().is_null
        assert not AsymmetrySpec(nat_fraction=0.1).is_null
        assert not AsymmetrySpec(degraded_fraction=0.5, link_loss_rate=0.1).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"degraded_fraction": -0.5},
            {"degraded_fraction": 2.0},
            {"link_loss_rate": 1.5},
            {"nat_fraction": float("nan")},
        ],
    )
    def test_rejects_bad_fractions(self, kwargs):
        with pytest.raises(ValueError):
            AsymmetrySpec(**kwargs)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay_cycles must be non-negative"):
            AsymmetrySpec(link_delay_cycles=-1)

    def test_rejects_float_delay(self):
        with pytest.raises(TypeError, match="delay_cycles must be an int"):
            AsymmetrySpec(link_delay_cycles=1.0)


class TestConstructorHardening:
    def test_conditioned_transport_rejects_wrong_spec_types(self):
        with pytest.raises(TypeError, match="partition must be a PartitionSpec"):
            ConditionedTransport(partition=(0, 5))
        with pytest.raises(TypeError, match="asymmetry must be an AsymmetrySpec"):
            ConditionedTransport(asymmetry={"nat_fraction": 0.1})

    def test_make_transport_rejects_conditions_elsewhere(self):
        for name in ("direct", "lossy", "latency"):
            with pytest.raises(ValueError, match="require the 'conditioned' transport"):
                make_transport(name, partition=PartitionSpec())
            with pytest.raises(ValueError, match="require the 'conditioned' transport"):
                make_transport(name, asymmetry=AsymmetrySpec(nat_fraction=0.1))

    def test_make_transport_builds_conditioned(self):
        transport = make_transport(
            "conditioned",
            loss_rate=0.1,
            delay_cycles=1,
            seed=9,
            partition=PartitionSpec(split_cycle=1, heal_cycle=2),
            asymmetry=AsymmetrySpec(nat_fraction=0.1),
        )
        assert isinstance(transport, ConditionedTransport)
        assert transport.name == "conditioned"

    def test_config_rejects_conditions_on_other_transports(self):
        with pytest.raises(ValueError, match="ignores partition/asymmetry"):
            P3QConfig(network_size=4, storage=2, partition=PartitionSpec())
        with pytest.raises(ValueError, match="ignores partition/asymmetry"):
            P3QConfig(
                network_size=4,
                storage=2,
                transport="lossy",
                loss_rate=0.1,
                asymmetry=AsymmetrySpec(),
            )

    def test_config_rejects_wrong_spec_types(self):
        with pytest.raises(TypeError, match="partition must be a PartitionSpec"):
            P3QConfig(network_size=4, storage=2, transport="conditioned", partition=3)
        with pytest.raises(TypeError, match="asymmetry must be an AsymmetrySpec"):
            P3QConfig(network_size=4, storage=2, transport="conditioned", asymmetry=0.2)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_config_rejects_bad_free_rider_fraction(self, bad):
        with pytest.raises(ValueError, match="free_rider_fraction"):
            P3QConfig(network_size=4, storage=2, free_rider_fraction=bad)

    def test_config_rejects_bool_free_rider_fraction(self):
        with pytest.raises(TypeError, match="free_rider_fraction"):
            P3QConfig(network_size=4, storage=2, free_rider_fraction=True)

    def test_config_accepts_conditions_on_conditioned(self):
        config = P3QConfig(
            network_size=4,
            storage=2,
            transport="conditioned",
            partition=PartitionSpec(split_cycle=0, heal_cycle=3),
            asymmetry=AsymmetrySpec(nat_fraction=0.2),
            free_rider_fraction=0.25,
        )
        assert config.partition.heal_cycle == 3


# ------------------------------------------------------------------ partition


class TestPartitionTransport:
    def _transport(self, split=1, heal=4, components=2, seed=7):
        return ConditionedTransport(
            seed=seed,
            partition=PartitionSpec(
                components=components, split_cycle=split, heal_cycle=heal
            ),
        )

    def test_components_are_balanced_and_deterministic(self, tiny_dataset):
        transport = self._transport()
        _wire(transport, tiny_dataset)
        assignment = {uid: transport.partition_component(uid) for uid in range(5)}
        sizes = sorted(
            list(assignment.values()).count(c) for c in set(assignment.values())
        )
        assert sizes == [2, 3]
        twin = self._transport()
        _wire(twin, tiny_dataset)
        assert assignment == {uid: twin.partition_component(uid) for uid in range(5)}

    def test_cut_drops_are_accounted(self, tiny_dataset):
        transport = self._transport()
        network, nodes = _wire(transport, tiny_dataset)
        sender, receiver = _cross_pair(transport, nodes)
        network.current_cycle = 2  # inside [split, heal)
        dispatch = transport.request(sender, receiver, _digest_ad(nodes[sender]))
        assert dispatch.status == DROPPED
        assert transport.cut_drops == 1
        # Accounted like a lossy drop: the sender paid for the attempt.
        assert network.stats.total_bytes() > 0

    def test_same_component_delivery_during_cut(self, tiny_dataset):
        transport = self._transport()
        network, nodes = _wire(transport, tiny_dataset)
        sender, receiver = _same_pair(transport, nodes)
        network.current_cycle = 2
        dispatch = transport.request(sender, receiver, _digest_ad(nodes[sender]))
        assert dispatch.status == DELIVERED

    @pytest.mark.parametrize("cycle", [0, 4, 9])
    def test_cut_is_inactive_outside_the_window(self, tiny_dataset, cycle):
        transport = self._transport(split=1, heal=4)
        network, nodes = _wire(transport, tiny_dataset)
        sender, receiver = _cross_pair(transport, nodes)
        network.current_cycle = cycle
        assert not transport.partition_active()
        dispatch = transport.request(sender, receiver, _digest_ad(nodes[sender]))
        assert dispatch.status == DELIVERED
        assert transport.cut_drops == 0

    def test_in_flight_envelope_is_held_until_heal(self, tiny_dataset):
        transport = self._transport(split=1, heal=4)
        network, nodes = _wire(transport, tiny_dataset)
        sender, receiver = _cross_pair(transport, nodes)
        events = []
        transport.add_observer(events.append)
        # Sent before the split, due while the cut is up.
        envelope = Envelope(sender, receiver, _digest_ad(nodes[sender]), None, False, False)
        network.current_cycle = 0
        transport._enqueue(envelope, 2)
        network.current_cycle = 2
        assert transport.drain() == 0
        assert transport.pending_count() == 1
        assert events[-1].status == DEFERRED and not events[-1].accounted
        # At the heal cycle the held envelope finally goes through.
        network.current_cycle = 4
        assert transport.drain() == 1
        assert transport.pending_count() == 0
        assert events[-1].status == DELIVERED


# ------------------------------------------------------------------ asymmetry


class TestAsymmetricLinks:
    def test_nat_nodes_are_unreachable_inbound_only(self, tiny_dataset):
        transport = ConditionedTransport(
            seed=5, asymmetry=AsymmetrySpec(nat_fraction=0.4)
        )
        network, nodes = _wire(transport, tiny_dataset)
        nat = transport.nat_ids()
        assert len(nat) == 2  # round(0.4 * 5)
        nat_node = min(nat)
        open_node = min(set(nodes) - nat)
        before = network.stats.total_bytes()
        assert (
            transport.request(open_node, nat_node, _digest_ad(nodes[open_node])).status
            == UNREACHABLE
        )
        # The connection never opened: nothing was charged.
        assert network.stats.total_bytes() == before
        # Outbound traffic of a NAT node flows normally.
        assert (
            transport.request(nat_node, open_node, _digest_ad(nodes[nat_node])).status
            == DELIVERED
        )

    def test_zero_nat_fraction_samples_nothing(self, tiny_dataset):
        transport = ConditionedTransport(seed=5, asymmetry=AsymmetrySpec())
        _wire(transport, tiny_dataset)
        assert transport.nat_ids() == frozenset()

    def test_degraded_links_are_per_direction_and_order_independent(self, tiny_dataset):
        spec = AsymmetrySpec(degraded_fraction=0.5, link_loss_rate=1.0)
        first = ConditionedTransport(seed=11, asymmetry=spec)
        second = ConditionedTransport(seed=11, asymmetry=spec)
        _wire(first, tiny_dataset)
        _wire(second, tiny_dataset)
        pairs = [(a, b) for a in range(5) for b in range(5) if a != b]
        forward = {pair: first._link_degraded(*pair) for pair in pairs}
        # Same seed, reversed first-touch order: identical decisions.
        reverse = {pair: second._link_degraded(*pair) for pair in reversed(pairs)}
        assert forward == reverse
        assert any(forward.values()) and not all(forward.values())
        # Per direction: at least one pair differs from its mirror.
        assert any(
            forward[(a, b)] != forward[(b, a)] for a, b in pairs if (b, a) in forward
        )

    def test_fully_degraded_link_drops_everything(self, tiny_dataset):
        transport = ConditionedTransport(
            seed=2, asymmetry=AsymmetrySpec(degraded_fraction=1.0, link_loss_rate=1.0)
        )
        network, nodes = _wire(transport, tiny_dataset)
        dispatch = transport.request(0, 1, _digest_ad(nodes[0]))
        assert dispatch.status == DROPPED
        assert network.stats.total_bytes() > 0  # charged at send time

    def test_degraded_link_delay_defers_deferrable_messages(self, tiny_dataset):
        transport = ConditionedTransport(
            seed=2, asymmetry=AsymmetrySpec(degraded_fraction=1.0, link_delay_cycles=2)
        )
        network, nodes = _wire(transport, tiny_dataset)
        dispatch = transport.request(0, 1, _digest_ad(nodes[0]))
        assert dispatch.status == DEFERRED
        assert transport.pending_count() == 1
        # Control sub-requests stay synchronous even on degraded links.
        control = CommonItemsRequest(subject_id=0, items=frozenset({1}))
        assert transport.request(0, 1, control).status == DELIVERED
