"""Tests for profile-change and churn trace generation."""

from __future__ import annotations

import pytest

from repro.data.dynamics import (
    ChurnEvent,
    DynamicsConfig,
    ProfileDynamicsGenerator,
    apply_change_day,
    massive_departure,
)


class TestDynamicsConfig:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            DynamicsConfig(change_fraction=1.5)

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            DynamicsConfig(mean_new_actions=0)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            DynamicsConfig(num_days=0)


class TestProfileDynamics:
    def test_change_day_touches_expected_fraction(self, synthetic_dataset):
        config = DynamicsConfig(change_fraction=0.25, seed=1)
        generator = ProfileDynamicsGenerator(synthetic_dataset, config)
        day = generator.generate_day()
        expected = round(len(synthetic_dataset) * 0.25)
        assert abs(len(day.changed_users) - expected) <= 2

    def test_new_actions_are_really_new(self, synthetic_dataset):
        generator = ProfileDynamicsGenerator(synthetic_dataset, DynamicsConfig(seed=2))
        day = generator.generate_day()
        for change in day.changes:
            profile_actions = synthetic_dataset.profile(change.user_id).actions
            for action in change.new_actions:
                assert action not in profile_actions

    def test_change_sizes_respect_cap(self, synthetic_dataset):
        config = DynamicsConfig(mean_new_actions=5, max_new_actions=12, seed=3)
        generator = ProfileDynamicsGenerator(synthetic_dataset, config)
        day = generator.generate_day()
        assert all(1 <= len(change) <= 12 for change in day.changes)

    def test_generate_produces_num_days(self, synthetic_dataset):
        config = DynamicsConfig(num_days=3, seed=4)
        days = ProfileDynamicsGenerator(synthetic_dataset, config).generate()
        assert [day.day for day in days] == [0, 1, 2]

    def test_deterministic_given_seed(self, synthetic_dataset):
        a = ProfileDynamicsGenerator(synthetic_dataset, DynamicsConfig(seed=9)).generate_day()
        b = ProfileDynamicsGenerator(synthetic_dataset, DynamicsConfig(seed=9)).generate_day()
        assert a.changed_users == b.changed_users
        assert [c.new_actions for c in a.changes] == [c.new_actions for c in b.changes]

    def test_apply_change_day_mutates_profiles(self, synthetic_dataset):
        dataset = synthetic_dataset.copy()
        generator = ProfileDynamicsGenerator(dataset, DynamicsConfig(seed=5))
        day = generator.generate_day()
        before = {uid: dataset.profile(uid).version for uid in day.changed_users}
        applied = apply_change_day(dataset, day)
        assert set(applied) == set(day.changed_users)
        for change in day.changes:
            profile = dataset.profile(change.user_id)
            assert profile.version == before[change.user_id] + applied[change.user_id]
            for action in change.new_actions:
                assert action in profile

    def test_empty_dataset_rejected(self):
        from repro.data.models import Dataset, UserProfile

        empty = Dataset({0: UserProfile(0)})
        with pytest.raises(ValueError):
            ProfileDynamicsGenerator(empty)


class TestChurn:
    def test_departure_fraction(self, synthetic_dataset):
        event = massive_departure(synthetic_dataset, fraction=0.5, seed=1)
        assert len(event) == round(0.5 * len(synthetic_dataset))

    def test_protected_users_never_depart(self, synthetic_dataset):
        protected = synthetic_dataset.user_ids[:5]
        event = massive_departure(synthetic_dataset, fraction=0.9, seed=2, protect=protected)
        assert not set(protected) & set(event.departing_users)

    def test_zero_fraction_departs_nobody(self, synthetic_dataset):
        event = massive_departure(synthetic_dataset, fraction=0.0)
        assert len(event) == 0

    def test_invalid_fraction_rejected(self, synthetic_dataset):
        with pytest.raises(ValueError):
            massive_departure(synthetic_dataset, fraction=1.2)

    def test_deterministic_given_seed(self, synthetic_dataset):
        a = massive_departure(synthetic_dataset, fraction=0.3, seed=7)
        b = massive_departure(synthetic_dataset, fraction=0.3, seed=7)
        assert a.departing_users == b.departing_users

    def test_event_records_cycle(self, synthetic_dataset):
        event = massive_departure(synthetic_dataset, fraction=0.1, cycle=4)
        assert isinstance(event, ChurnEvent)
        assert event.cycle == 4
