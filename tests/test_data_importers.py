"""Tests for the external-trace importer."""

from __future__ import annotations

import gzip

import pytest

from repro.data.importers import (
    ImportResult,
    TraceImportError,
    import_tagging_trace,
    iter_tagging_rows,
)


@pytest.fixture()
def trace_file(tmp_path):
    """A small delicious-style TSV trace: user, item (url), tag."""
    lines = []
    # Three users sharing items, one loner; item 'rare' only used by one user.
    for user in ("alice", "bob", "carol"):
        lines.append(f"{user}\thttp://python.org\tpython")
        lines.append(f"{user}\thttp://python.org\tprogramming")
        lines.append(f"{user}\thttp://numpy.org\tnumerics")
    lines.append("dave\thttp://rare.example\tobscure")
    lines.append("dave\thttp://python.org\tpython")
    path = tmp_path / "trace.tsv"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestRowIteration:
    def test_yields_all_rows(self, trace_file):
        rows = list(iter_tagging_rows(trace_file))
        assert len(rows) == 11
        assert rows[0] == ("alice", "http://python.org", "python")

    def test_skip_header(self, tmp_path):
        path = tmp_path / "with_header.tsv"
        path.write_text("user\titem\ttag\nalice\tx\ty\n")
        rows = list(iter_tagging_rows(path, skip_header=True))
        assert rows == [("alice", "x", "y")]

    def test_custom_columns_and_delimiter(self, tmp_path):
        path = tmp_path / "custom.csv"
        path.write_text("2020-01-01,alice,python,http://python.org\n")
        rows = list(
            iter_tagging_rows(path, delimiter=",", user_column=1, item_column=3, tag_column=2)
        )
        assert rows == [("alice", "http://python.org", "python")]

    def test_short_row_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("alice\tonly-two-columns\n")
        with pytest.raises(TraceImportError):
            list(iter_tagging_rows(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("alice\tx\ty\n\n\nbob\tx\ty\n")
        assert len(list(iter_tagging_rows(path))) == 2

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "trace.tsv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("alice\tx\ty\n")
        assert list(iter_tagging_rows(path)) == [("alice", "x", "y")]


class TestImport:
    def test_import_without_cleaning(self, trace_file):
        result = import_tagging_trace(
            trace_file, min_users_per_item=1, min_users_per_tag=1
        )
        assert isinstance(result, ImportResult)
        assert len(result.dataset) == 4
        assert result.num_actions == 11
        assert set(result.user_ids) == {"alice", "bob", "carol", "dave"}

    def test_duplicate_actions_collapse(self, tmp_path):
        path = tmp_path / "dup.tsv"
        path.write_text("alice\tx\ty\nalice\tx\ty\n")
        result = import_tagging_trace(path, min_users_per_item=1, min_users_per_tag=1)
        assert result.num_actions == 1

    def test_cleaning_drops_rare_items_and_tags(self, trace_file):
        result = import_tagging_trace(
            trace_file, min_users_per_item=3, min_users_per_tag=3
        )
        dataset = result.dataset
        rare_item = result.item_ids["http://rare.example"]
        python_item = result.item_ids["http://python.org"]
        assert rare_item not in dataset.items()
        assert python_item in dataset.items()

    def test_user_sampling_is_deterministic(self, trace_file):
        a = import_tagging_trace(
            trace_file, min_users_per_item=1, min_users_per_tag=1, sample_users=2, seed=3
        )
        b = import_tagging_trace(
            trace_file, min_users_per_item=1, min_users_per_tag=1, sample_users=2, seed=3
        )
        assert a.dataset.user_ids == b.dataset.user_ids
        assert len(a.dataset) == 2

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("\n")
        with pytest.raises(TraceImportError):
            import_tagging_trace(path)

    def test_imported_dataset_runs_through_p3q(self, trace_file):
        """End-to-end: an imported trace can drive a small P3Q simulation."""
        from repro.data.queries import QueryWorkloadGenerator
        from repro.p3q import P3QConfig, P3QSimulation

        result = import_tagging_trace(
            trace_file, min_users_per_item=1, min_users_per_tag=1
        )
        config = P3QConfig(
            network_size=3, storage=1, random_view_size=2,
            digest_bits=512, digest_hashes=3, seed=1,
        )
        simulation = P3QSimulation(result.dataset, config)
        simulation.warm_start()
        alice = result.user_ids["alice"]
        query = QueryWorkloadGenerator(result.dataset, seed=1).query_for(alice)
        sessions = simulation.issue_queries([query])
        simulation.run_eager(cycles=10)
        assert sessions[query.query_id].snapshots[-1].items
