"""Tests for dataset persistence."""

from __future__ import annotations

import json

import pytest

from repro.data.loader import DatasetFormatError, load_dataset, save_dataset


class TestRoundTrip:
    def test_json_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "trace.json"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.user_ids == tiny_dataset.user_ids
        for uid in tiny_dataset.user_ids:
            assert loaded.profile(uid).actions == tiny_dataset.profile(uid).actions

    def test_gzip_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "trace.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.user_ids == tiny_dataset.user_ids

    def test_synthetic_round_trip(self, synthetic_dataset, tmp_path):
        path = tmp_path / "synthetic.json"
        save_dataset(synthetic_dataset, path)
        loaded = load_dataset(path)
        assert loaded.stats().as_dict() == synthetic_dataset.stats().as_dict()

    def test_creates_parent_directories(self, tiny_dataset, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.json"
        save_dataset(tiny_dataset, path)
        assert path.exists()


class TestValidation:
    def test_rejects_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1, "users": {}}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-tagging-trace", "version": 99, "users": {}}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_malformed_users_section(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-tagging-trace", "version": 1, "users": []}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_non_integer_user_id(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"format": "repro-tagging-trace", "version": 1, "users": {"abc": [[1, 2]]}}
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_malformed_action(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"format": "repro-tagging-trace", "version": 1, "users": {"0": [[1, 2, 3]]}}
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)
