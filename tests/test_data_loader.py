"""Tests for dataset persistence."""

from __future__ import annotations

import json

import pytest

from repro.data.loader import DatasetFormatError, load_dataset, save_dataset


class TestRoundTrip:
    def test_json_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "trace.json"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.user_ids == tiny_dataset.user_ids
        for uid in tiny_dataset.user_ids:
            assert loaded.profile(uid).actions == tiny_dataset.profile(uid).actions

    def test_gzip_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "trace.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.user_ids == tiny_dataset.user_ids

    def test_synthetic_round_trip(self, synthetic_dataset, tmp_path):
        path = tmp_path / "synthetic.json"
        save_dataset(synthetic_dataset, path)
        loaded = load_dataset(path)
        assert loaded.stats().as_dict() == synthetic_dataset.stats().as_dict()

    def test_creates_parent_directories(self, tiny_dataset, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.json"
        save_dataset(tiny_dataset, path)
        assert path.exists()


class TestValidation:
    def test_rejects_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1, "users": {}}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-tagging-trace", "version": 99, "users": {}}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_malformed_users_section(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-tagging-trace", "version": 1, "users": []}))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_non_integer_user_id(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"format": "repro-tagging-trace", "version": 1, "users": {"abc": [[1, 2]]}}
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_rejects_malformed_action(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"format": "repro-tagging-trace", "version": 1, "users": {"0": [[1, 2, 3]]}}
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError):
            load_dataset(path)


class TestSyntheticDatasetCache:
    """The spec-hash disk cache: hits are bit-identical to regeneration."""

    CONFIG_KW = dict(
        num_users=40,
        num_items=260,
        num_tags=80,
        num_communities=4,
        mean_actions_per_user=20,
        seed=17,
    )

    def _fingerprint(self, dataset):
        # Order-sensitive: set iteration order must survive the round trip,
        # it is what downstream runs observe.
        return [(p.user_id, list(p), p.version) for p in dataset.profiles()]

    def test_miss_then_hit_round_trip_is_bit_identical(self, tmp_path):
        from repro.data import SyntheticConfig, load_or_generate_synthetic

        config = SyntheticConfig(**self.CONFIG_KW)
        first, status1 = load_or_generate_synthetic(config, tmp_path)
        second, status2 = load_or_generate_synthetic(config, tmp_path)
        assert (status1, status2) == ("miss", "hit")
        assert self._fingerprint(first) == self._fingerprint(second)

    def test_cache_off_without_directory(self):
        from repro.data import SyntheticConfig, load_or_generate_synthetic

        config = SyntheticConfig(**self.CONFIG_KW)
        dataset, status = load_or_generate_synthetic(config, None)
        assert status == "off"
        assert len(dataset) == config.num_users

    def test_different_specs_use_different_keys(self, tmp_path):
        from repro.data import SyntheticConfig, synthetic_cache_key

        a = SyntheticConfig(**self.CONFIG_KW)
        b = SyntheticConfig(**{**self.CONFIG_KW, "seed": 18})
        assert synthetic_cache_key(a) != synthetic_cache_key(b)
        assert synthetic_cache_key(a) == synthetic_cache_key(SyntheticConfig(**self.CONFIG_KW))

    def test_corrupt_cache_falls_back_to_generation(self, tmp_path):
        from repro.data import SyntheticConfig, load_or_generate_synthetic
        from repro.data.loader import synthetic_cache_path

        config = SyntheticConfig(**self.CONFIG_KW)
        reference, _ = load_or_generate_synthetic(config, tmp_path)
        synthetic_cache_path(config, tmp_path).write_bytes(b"garbage")
        dataset, status = load_or_generate_synthetic(config, tmp_path)
        assert status == "miss"
        assert self._fingerprint(dataset) == self._fingerprint(reference)

    def test_key_mismatch_rejected(self, tmp_path):
        from repro.data import SyntheticConfig
        from repro.data.loader import (
            load_trace_cache,
            save_trace_cache,
        )

        save_trace_cache([(0, [(1, 2), (3, 4)])], "key-a", tmp_path / "t.trace")
        loaded = load_trace_cache(tmp_path / "t.trace", expected_key="key-a")
        assert list(loaded.profile(0)) == [(1, 2), (3, 4)]
        with pytest.raises(DatasetFormatError):
            load_trace_cache(tmp_path / "t.trace", expected_key="key-b")

    def test_cached_run_simulates_identically(self, tmp_path):
        """A simulation over a cache hit is bit-identical to one over a miss."""
        from repro.data import SyntheticConfig, load_or_generate_synthetic
        from repro.p3q import P3QConfig, P3QSimulation

        config = SyntheticConfig(**self.CONFIG_KW)

        def run(dataset):
            sim = P3QSimulation(
                dataset,
                P3QConfig(network_size=10, storage=3, seed=9, digest_bits=512, digest_hashes=3),
            )
            sim.bootstrap_random_views()
            sim.run_lazy(3)
            return sorted(sim.stats.bytes_by_kind().items()), {
                uid: node.personal_network.member_ids()
                for uid, node in sorted(sim.nodes.items())
            }

        missed, _ = load_or_generate_synthetic(config, tmp_path)
        hit, status = load_or_generate_synthetic(config, tmp_path)
        assert status == "hit"
        assert run(missed) == run(hit)


class TestColumnarDatasetCache:
    """The same spec-hash cache feeding the columnar load path.

    Pins the three properties the large-N setup pipeline rests on: the
    columnar and object load paths have equal dataset fingerprints (miss
    *and* hit), a corrupted cache file regenerates instead of crashing, and
    a generator-source change invalidates the key so stale traces are never
    adopted.
    """

    CONFIG_KW = TestSyntheticDatasetCache.CONFIG_KW

    def _fingerprint(self, dataset):
        return [(p.user_id, list(p), p.version) for p in dataset.profiles()]

    def test_columnar_equals_object_path_on_miss_and_hit(self, tmp_path):
        from repro.data import (
            SyntheticConfig,
            load_or_generate_columnar,
            load_or_generate_synthetic,
        )

        config = SyntheticConfig(**self.CONFIG_KW)
        reference, _ = load_or_generate_synthetic(config, None)
        expected = self._fingerprint(reference)

        missed, status1 = load_or_generate_columnar(config, tmp_path)
        hit, status2 = load_or_generate_columnar(config, tmp_path)
        assert (status1, status2) == ("miss", "hit")
        assert self._fingerprint(missed) == expected
        assert self._fingerprint(hit) == expected

    def test_columnar_hit_adopts_the_object_paths_cache_file(self, tmp_path):
        """One cache file serves both load paths: the layout is shared."""
        from repro.data import (
            SyntheticConfig,
            load_or_generate_columnar,
            load_or_generate_synthetic,
        )

        config = SyntheticConfig(**self.CONFIG_KW)
        reference, status1 = load_or_generate_synthetic(config, tmp_path)
        columnar, status2 = load_or_generate_columnar(config, tmp_path)
        assert (status1, status2) == ("miss", "hit")
        assert self._fingerprint(columnar) == self._fingerprint(reference)

    def test_corrupt_cache_falls_back_to_generation(self, tmp_path):
        from repro.data import SyntheticConfig, load_or_generate_columnar
        from repro.data.loader import synthetic_cache_path

        config = SyntheticConfig(**self.CONFIG_KW)
        reference, _ = load_or_generate_columnar(config, tmp_path)
        synthetic_cache_path(config, tmp_path).write_bytes(b"garbage")
        dataset, status = load_or_generate_columnar(config, tmp_path)
        assert status == "miss"
        assert self._fingerprint(dataset) == self._fingerprint(reference)

    def test_truncated_cache_falls_back_to_generation(self, tmp_path):
        """A partially written file (valid header, short body) regenerates."""
        from repro.data import SyntheticConfig, load_or_generate_columnar
        from repro.data.loader import synthetic_cache_path

        config = SyntheticConfig(**self.CONFIG_KW)
        reference, _ = load_or_generate_columnar(config, tmp_path)
        path = synthetic_cache_path(config, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        dataset, status = load_or_generate_columnar(config, tmp_path)
        assert status == "miss"
        assert self._fingerprint(dataset) == self._fingerprint(reference)

    def test_generator_source_change_invalidates_the_key(self, tmp_path, monkeypatch):
        """The cache key embeds the generator fingerprint: bumping it (what a
        generator-source change does) must miss instead of adopting a trace
        the current source would not produce."""
        import repro.data.loader as loader_module
        from repro.data import SyntheticConfig, load_or_generate_columnar

        config = SyntheticConfig(**self.CONFIG_KW)
        _, status1 = load_or_generate_columnar(config, tmp_path)
        assert status1 == "miss"
        old_key = loader_module.synthetic_cache_key(config)
        monkeypatch.setattr(
            loader_module, "GENERATOR_FINGERPRINT", "synthetic-trace-v999"
        )
        assert loader_module.synthetic_cache_key(config) != old_key
        _, status2 = load_or_generate_columnar(config, tmp_path)
        assert status2 == "miss"
        _, status3 = load_or_generate_columnar(config, tmp_path)
        assert status3 == "hit"
