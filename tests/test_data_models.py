"""Unit tests for the tagging data model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.data.models import ChangeDay, ProfileChange, UserProfile


class TestUserProfile:
    def test_add_returns_true_for_new_action(self):
        profile = UserProfile(1)
        assert profile.add(10, 20) is True

    def test_add_returns_false_for_duplicate(self):
        profile = UserProfile(1, [(10, 20)])
        assert profile.add(10, 20) is False

    def test_version_increments_only_on_new_actions(self):
        profile = UserProfile(1)
        assert profile.version == 0
        profile.add(1, 2)
        assert profile.version == 1
        profile.add(1, 2)
        assert profile.version == 1
        profile.add(1, 3)
        assert profile.version == 2

    def test_items_and_tags_for(self):
        profile = UserProfile(1, [(1, 10), (1, 11), (2, 10)])
        assert profile.items == frozenset({1, 2})
        assert profile.tags_for(1) == frozenset({10, 11})
        assert profile.tags_for(99) == frozenset()

    def test_actions_for_items_restricts_to_requested_items(self):
        profile = UserProfile(1, [(1, 10), (2, 11), (3, 12)])
        assert profile.actions_for_items({1, 3}) == {(1, 10), (3, 12)}

    def test_len_and_contains(self):
        profile = UserProfile(1, [(1, 10), (2, 11)])
        assert len(profile) == 2
        assert (1, 10) in profile
        assert (9, 9) not in profile

    def test_copy_is_independent(self):
        profile = UserProfile(1, [(1, 10)])
        clone = profile.copy()
        assert clone == profile
        assert clone.version == profile.version
        profile.add(2, 20)
        assert (2, 20) not in clone
        assert clone.version != profile.version

    def test_add_all_counts_new_actions_only(self):
        profile = UserProfile(1, [(1, 10)])
        added = profile.add_all([(1, 10), (2, 20), (3, 30)])
        assert added == 2

    def test_equality_requires_same_user_and_actions(self):
        a = UserProfile(1, [(1, 10)])
        b = UserProfile(1, [(1, 10)])
        c = UserProfile(2, [(1, 10)])
        assert a == b
        assert a != c

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            max_size=60,
        )
    )
    def test_profile_length_equals_distinct_actions(self, actions):
        profile = UserProfile(0, actions)
        assert len(profile) == len(set(actions))
        assert profile.version == len(set(actions))

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            max_size=40,
        )
    )
    def test_items_match_actions(self, actions):
        profile = UserProfile(0, actions)
        assert profile.items == {item for item, _ in set(actions)}


class TestDataset:
    def test_from_actions_builds_profiles(self, tiny_dataset):
        assert len(tiny_dataset) == 5
        assert tiny_dataset.profile(0).items == frozenset({1, 2, 3, 4})

    def test_user_ids_sorted(self, tiny_dataset):
        assert tiny_dataset.user_ids == [0, 1, 2, 3, 4]

    def test_items_and_tags_union(self, tiny_dataset):
        assert 1 in tiny_dataset.items()
        assert 200 in tiny_dataset.tags()

    def test_item_popularity_counts_distinct_users(self, tiny_dataset):
        popularity = tiny_dataset.item_popularity()
        assert popularity[1] == 4  # users 0, 1, 2, 4
        assert popularity[12] == 1

    def test_stats(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats.num_users == 5
        assert stats.num_actions == sum(len(p) for p in tiny_dataset.profiles())
        assert stats.max_profile_length >= stats.mean_profile_length

    def test_filter_rare_drops_unpopular_items(self, tiny_dataset):
        filtered = tiny_dataset.filter_rare(min_item_users=3, min_tag_users=1)
        remaining_items = filtered.items()
        assert 1 in remaining_items          # tagged by 4 users
        assert 12 not in remaining_items     # tagged by 1 user

    def test_filter_rare_keeps_user_count(self, tiny_dataset):
        filtered = tiny_dataset.filter_rare(min_item_users=3, min_tag_users=3)
        assert len(filtered) == len(tiny_dataset)

    def test_sample_users(self, tiny_dataset):
        sampled = tiny_dataset.sample_users([0, 3])
        assert sampled.user_ids == [0, 3]

    def test_copy_is_deep(self, tiny_dataset):
        clone = tiny_dataset.copy()
        clone.profile(0).add(999, 999)
        assert (999, 999) not in tiny_dataset.profile(0)

    def test_contains(self, tiny_dataset):
        assert 0 in tiny_dataset
        assert 99 not in tiny_dataset


class TestChangeStructures:
    def test_profile_change_length(self):
        change = ProfileChange(user_id=1, new_actions=((1, 2), (3, 4)))
        assert len(change) == 2

    def test_change_day_changed_users(self):
        day = ChangeDay(
            day=0,
            changes=(
                ProfileChange(user_id=1, new_actions=((1, 2),)),
                ProfileChange(user_id=4, new_actions=((5, 6),)),
            ),
        )
        assert day.changed_users == frozenset({1, 4})
        assert len(day) == 2
