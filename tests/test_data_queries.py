"""Tests for query-workload generation."""

from __future__ import annotations

import pytest

from repro.data.models import Dataset, UserProfile
from repro.data.queries import Query, QueryWorkloadGenerator


class TestQuery:
    def test_requires_at_least_one_tag(self):
        with pytest.raises(ValueError):
            Query(query_id=0, querier=1, tags=())

    def test_len_counts_tags(self):
        assert len(Query(query_id=0, querier=1, tags=(1, 2, 3))) == 3


class TestWorkloadGenerator:
    def test_query_tags_come_from_source_item(self, synthetic_dataset):
        generator = QueryWorkloadGenerator(synthetic_dataset, seed=1)
        user_id = synthetic_dataset.user_ids[0]
        query = generator.query_for(user_id)
        assert query is not None
        profile = synthetic_dataset.profile(user_id)
        assert query.source_item in profile.items
        assert set(query.tags) == set(profile.tags_for(query.source_item))

    def test_query_owner_is_the_requested_user(self, synthetic_dataset):
        generator = QueryWorkloadGenerator(synthetic_dataset, seed=2)
        query = generator.query_for(synthetic_dataset.user_ids[3])
        assert query.querier == synthetic_dataset.user_ids[3]

    def test_one_query_per_user(self, synthetic_dataset):
        generator = QueryWorkloadGenerator(synthetic_dataset, seed=3)
        queries = generator.generate()
        assert len(queries) == len(synthetic_dataset)
        assert len({q.querier for q in queries}) == len(queries)

    def test_query_ids_are_unique(self, synthetic_dataset):
        queries = QueryWorkloadGenerator(synthetic_dataset, seed=4).generate()
        assert len({q.query_id for q in queries}) == len(queries)

    def test_empty_profile_skipped(self):
        dataset = Dataset({0: UserProfile(0), 1: UserProfile(1, [(1, 2)])})
        generator = QueryWorkloadGenerator(dataset, seed=5)
        assert generator.query_for(0) is None
        queries = generator.generate()
        assert [q.querier for q in queries] == [1]

    def test_generate_map_keys_by_querier(self, synthetic_dataset):
        generator = QueryWorkloadGenerator(synthetic_dataset, seed=6)
        mapping = generator.generate_map(synthetic_dataset.user_ids[:5])
        assert set(mapping) == set(synthetic_dataset.user_ids[:5])
        assert all(mapping[uid].querier == uid for uid in mapping)

    def test_deterministic_given_seed(self, synthetic_dataset):
        a = QueryWorkloadGenerator(synthetic_dataset, seed=8).generate()
        b = QueryWorkloadGenerator(synthetic_dataset, seed=8).generate()
        assert [(q.querier, q.tags) for q in a] == [(q.querier, q.tags) for q in b]
