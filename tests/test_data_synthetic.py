"""Tests for the synthetic tagging-trace generator."""

from __future__ import annotations

import pytest

from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticTraceGenerator,
    generate_dataset,
    paper_scale_config,
)


class TestSyntheticConfig:
    def test_defaults_are_valid(self):
        config = SyntheticConfig()
        assert config.num_users > 0

    def test_rejects_non_positive_users(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_users=0)

    def test_rejects_bad_affinity(self):
        with pytest.raises(ValueError):
            SyntheticConfig(community_affinity=1.5)

    def test_rejects_bad_max_tags(self):
        with pytest.raises(ValueError):
            SyntheticConfig(max_tags_per_item=0)

    def test_paper_scale_config_matches_paper_sizes(self):
        config = paper_scale_config()
        assert config.num_users == 10_000
        assert config.num_items == 100_000
        assert config.num_tags == 32_000


class TestGenerator:
    @pytest.fixture(scope="class")
    def small_config(self) -> SyntheticConfig:
        return SyntheticConfig(
            num_users=50,
            num_items=300,
            num_tags=80,
            num_communities=5,
            mean_actions_per_user=25,
            seed=11,
        )

    @pytest.fixture(scope="class")
    def dataset(self, small_config):
        return generate_dataset(small_config)

    def test_generates_requested_number_of_users(self, dataset, small_config):
        assert len(dataset) == small_config.num_users

    def test_every_profile_is_non_empty(self, dataset):
        assert all(len(profile) > 0 for profile in dataset.profiles())

    def test_items_and_tags_within_configured_ranges(self, dataset, small_config):
        assert max(dataset.items()) < small_config.num_items
        assert max(dataset.tags()) < small_config.num_tags

    def test_deterministic_given_seed(self, small_config):
        a = generate_dataset(small_config)
        b = generate_dataset(small_config)
        for uid in a.user_ids:
            assert a.profile(uid).actions == b.profile(uid).actions

    def test_different_seed_gives_different_trace(self, small_config):
        other = SyntheticConfig(
            num_users=small_config.num_users,
            num_items=small_config.num_items,
            num_tags=small_config.num_tags,
            num_communities=small_config.num_communities,
            mean_actions_per_user=small_config.mean_actions_per_user,
            seed=small_config.seed + 1,
        )
        a = generate_dataset(small_config)
        b = generate_dataset(other)
        assert any(a.profile(uid).actions != b.profile(uid).actions for uid in a.user_ids)

    def test_long_tail_item_popularity(self, dataset):
        """Most items are tagged by few users: the median popularity must sit
        well below the maximum (the long-tail property the paper relies on)."""
        popularity = sorted(dataset.item_popularity().values())
        median = popularity[len(popularity) // 2]
        assert median * 3 <= popularity[-1]

    def test_activity_is_skewed(self, dataset):
        lengths = sorted(len(p) for p in dataset.profiles())
        assert lengths[-1] > 2 * lengths[len(lengths) // 2]

    def test_community_members_share_more_than_strangers(self, small_config):
        """Users sharing a community overlap more than users who do not --
        the property that makes similarity-biased gossip useful."""
        generator = SyntheticTraceGenerator(small_config)
        dataset = generator.generate()
        memberships = generator.community_memberships()

        def overlap(a: int, b: int) -> int:
            return len(dataset.profile(a).actions & dataset.profile(b).actions)

        same_comm, diff_comm = [], []
        user_ids = dataset.user_ids
        for i, ua in enumerate(user_ids):
            for ub in user_ids[i + 1:]:
                value = overlap(ua, ub)
                if set(memberships[ua]) & set(memberships[ub]):
                    same_comm.append(value)
                else:
                    diff_comm.append(value)
        assert same_comm, "expected at least one same-community pair"
        mean_same = sum(same_comm) / len(same_comm)
        mean_diff = sum(diff_comm) / len(diff_comm) if diff_comm else 0.0
        assert mean_same > mean_diff

    def test_community_memberships_are_deterministic(self, small_config):
        a = SyntheticTraceGenerator(small_config).community_memberships()
        b = SyntheticTraceGenerator(small_config).community_memberships()
        assert a == b
