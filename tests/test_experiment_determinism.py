"""Golden and determinism regression tests for the experiment harness.

Two pins, in the spirit of the transport golden fixture:

* the ``fig-loss`` experiment at the default (small) scale must render
  byte-identically to the committed ``results/test_fig_loss.txt`` -- the
  loss sweep covers the whole lossy-transport stack (seeded drops, stranded
  queries, sender-side byte accounting), so any behavioural drift in that
  stack shows up as a diff of this report;
* ``run_experiments_parallel`` with several workers must produce reports
  byte-identical to a serial run -- each worker rebuilds its seeded
  workload from scratch, so process fan-out is a pure wall-clock
  optimisation, never a source of divergence.

The adversarial figures (``fig-partition``, ``fig-free-riders``) are pinned
the same way: together they cover the conditioned transport (partition cuts,
held envelopes, heal-cycle delivery) and the free-rider paths end to end.

Regenerate a pin (only after an *intentional* behaviour change) with::

    PYTHONPATH=src python -m repro.experiments.cli fig-loss --output results/
    mv results/fig-loss.txt results/test_fig_loss.txt

(and analogously ``fig-partition`` -> ``test_fig_partition.txt``,
``fig-free-riders`` -> ``test_fig_free_riders.txt``).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import ExperimentScale, prepare_workload
from repro.experiments.fig_adversarial import run_free_rider_sweep, run_partition_heal
from repro.experiments.fig_loss import run_loss_sweep
from repro.experiments.runner import run_experiments_parallel

_RESULTS = Path(__file__).parent.parent / "results"
GOLDEN_FIG_LOSS = _RESULTS / "test_fig_loss.txt"
GOLDEN_FIG_PARTITION = _RESULTS / "test_fig_partition.txt"
GOLDEN_FIG_FREE_RIDERS = _RESULTS / "test_fig_free_riders.txt"


class TestFigLossGolden:
    def test_loss_sweep_matches_committed_report(self):
        scale = ExperimentScale.small()
        workload = prepare_workload(scale)
        result = run_loss_sweep(scale, cycles=12, workload=workload)
        golden = GOLDEN_FIG_LOSS.read_text(encoding="utf-8")
        assert result.render() + "\n" == golden

    def test_zero_loss_column_dominates(self):
        """Sanity on the pinned numbers: loss can only hurt final recall."""
        golden = GOLDEN_FIG_LOSS.read_text(encoding="utf-8")
        assert "loss=0%" in golden and "loss=40%" in golden


class TestFigPartitionGolden:
    def test_partition_heal_matches_committed_report(self):
        scale = ExperimentScale.small()
        workload = prepare_workload(scale)
        result = run_partition_heal(scale, cycles=12, workload=workload)
        golden = GOLDEN_FIG_PARTITION.read_text(encoding="utf-8")
        assert result.render() + "\n" == golden

    def test_partition_stalls_then_recovers(self):
        """Sanity on the pinned numbers: the cut hurts, the heal helps."""
        golden = GOLDEN_FIG_PARTITION.read_text(encoding="utf-8")
        assert "healthy" in golden and "partitioned" in golden
        assert "messages dropped at the cut" in golden


class TestFigFreeRidersGolden:
    def test_free_rider_sweep_matches_committed_report(self):
        scale = ExperimentScale.small()
        workload = prepare_workload(scale)
        result = run_free_rider_sweep(scale, cycles=12, workload=workload)
        golden = GOLDEN_FIG_FREE_RIDERS.read_text(encoding="utf-8")
        assert result.render() + "\n" == golden

    def test_zero_fraction_column_present(self):
        golden = GOLDEN_FIG_FREE_RIDERS.read_text(encoding="utf-8")
        assert "riders=0%" in golden and "riders=75%" in golden


class TestParallelDeterminism:
    #: Three fast experiments covering the no-workload and workload paths.
    MATRIX = ("analysis", "table1", "fig2")

    def test_four_workers_byte_identical_to_serial(self):
        serial = run_experiments_parallel(self.MATRIX, scale_name="tiny", workers=1)
        parallel = run_experiments_parallel(self.MATRIX, scale_name="tiny", workers=4)
        assert [run.name for run in parallel] == list(self.MATRIX)
        for serial_run, parallel_run in zip(serial, parallel):
            assert serial_run.name == parallel_run.name
            assert serial_run.description == parallel_run.description
            assert serial_run.report == parallel_run.report

    def test_worker_count_does_not_reorder_results(self):
        runs = run_experiments_parallel(self.MATRIX, scale_name="tiny", workers=2)
        assert [run.name for run in runs] == list(self.MATRIX)
