"""Tests for the experiment runners (tiny scale) and scenario builders."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentScale,
    PAPER_STORAGE_LEVELS,
    format_series,
    format_table,
    poisson_storage_distribution,
    prepare_workload,
    run_alpha_analysis,
    run_alpha_recall,
    run_convergence,
    run_storage_recall,
    run_table1,
    run_table2,
    storage_level_fractions,
    storage_level_probabilities,
    uniform_storage_distribution,
)
from repro.experiments.ablations import run_exchange_ablation
from repro.experiments.fig11_churn import run_churn
from repro.experiments.fig8_reach import run_users_reached


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    return ExperimentScale.tiny(seed=21)


@pytest.fixture(scope="module")
def tiny_workload(tiny_scale):
    return prepare_workload(tiny_scale, num_queries=8)


class TestScenarios:
    def test_poisson_probabilities_match_table1_lambda1(self):
        probabilities = storage_level_probabilities(1.0)
        assert probabilities[0] == pytest.approx(0.3679, abs=5e-4)
        assert probabilities[1] == pytest.approx(0.3679, abs=5e-4)
        assert probabilities[2] == pytest.approx(0.1839, abs=5e-4)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_poisson_probabilities_match_table1_lambda4(self):
        probabilities = storage_level_probabilities(4.0)
        assert probabilities[0] == pytest.approx(0.0206, abs=2e-3)
        assert probabilities[-1] == pytest.approx(0.1173, abs=2e-3)

    def test_poisson_distribution_uses_configured_levels(self):
        assignment = poisson_storage_distribution(range(200), 1.0, seed=1)
        assert set(assignment.values()) <= set(PAPER_STORAGE_LEVELS)

    def test_poisson_distribution_empirically_close(self):
        assignment = poisson_storage_distribution(range(5000), 1.0, seed=2)
        fractions = storage_level_fractions(assignment)
        assert fractions[10] == pytest.approx(0.368, abs=0.03)

    def test_uniform_distribution(self):
        assert uniform_storage_distribution([1, 2], 7) == {1: 7, 2: 7}

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            storage_level_probabilities(0.0)

    def test_scales_build_datasets(self, tiny_scale):
        dataset = tiny_scale.build_dataset()
        assert len(dataset) == tiny_scale.num_users

    def test_paper_scale_parameters(self):
        paper = ExperimentScale.paper()
        assert paper.num_users == 10_000
        assert paper.network_size == 1_000
        assert paper.storage_levels == PAPER_STORAGE_LEVELS


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("x", [0, 1], [("s1", [0.1, 0.2]), ("s2", [0.3])])
        assert "s1" in text and "s2" in text
        # Missing trailing values render as blanks, not crashes.
        assert text.splitlines()[-1].startswith("1")


class TestRunners:
    def test_table1(self):
        result = run_table1(num_users=300, seed=3)
        assert result.levels == PAPER_STORAGE_LEVELS
        text = result.render()
        assert "lambda=1" in text and "c=1000" in text

    def test_alpha_analysis_optimum_at_half(self):
        result = run_alpha_analysis(length=500, found_per_hop=10)
        assert result.best_alpha() == 0.5
        assert result.closed_form(0.5) < result.closed_form(0.9)
        assert "R(alpha)" in result.render()

    def test_convergence_improves_with_cycles_and_storage(self, tiny_scale):
        result = run_convergence(
            tiny_scale, storages=[2, 8], cycles=10, sample_every=5
        )
        for storage in (2, 8):
            series = result.series[storage]
            assert series[-1] > series[0]
        assert result.final_ratio(8) >= result.final_ratio(2) - 0.05
        assert "c=2" in result.render()

    def test_storage_recall_reaches_one(self, tiny_scale, tiny_workload):
        result = run_storage_recall(
            tiny_scale, storages=[3, 10], cycles=12, workload=tiny_workload
        )
        for storage in (3, 10):
            assert result.final_recall(storage) == pytest.approx(1.0)
        assert result.recall_at(10, 0) >= result.recall_at(3, 0) - 1e-9

    def test_alpha_recall_orders_alphas(self, tiny_scale, tiny_workload):
        result = run_alpha_recall(
            tiny_scale,
            alphas=(0.0, 0.5),
            storage=2,
            cycles=12,
            workload=tiny_workload,
        )
        # alpha = 0.5 must reach full recall no later than alpha = 0.
        half = result.cycles_to_reach(0.5, 0.999)
        zero = result.cycles_to_reach(0.0, 0.999)
        assert half is not None
        if zero is not None:
            assert half <= zero

    def test_table2_monotone_in_storage(self, tiny_scale, tiny_workload):
        result = run_table2(tiny_scale, storages=[2, 10], workload=tiny_workload)
        by_storage = {row.storage: row for row in result.rows_by_storage}
        assert by_storage[10].affected_fraction >= by_storage[2].affected_fraction
        assert by_storage[10].average_to_update >= by_storage[2].average_to_update

    def test_users_reached_more_with_less_storage(self, tiny_scale, tiny_workload):
        result = run_users_reached(tiny_scale, cycles=10, workload=tiny_workload)
        assert result.average(1.0) >= result.average(4.0)

    def test_churn_degrades_recall(self, tiny_scale, tiny_workload):
        result = run_churn(
            tiny_scale,
            lambdas=(1.0,),
            departures=(0.0, 0.7),
            cycles=8,
            workload=tiny_workload,
        )
        assert result.final_recall(1.0, 0.0) == pytest.approx(1.0)
        assert result.final_recall(1.0, 0.7) <= result.final_recall(1.0, 0.0)
        assert result.incomplete_queries[1.0][0.7] >= result.incomplete_queries[1.0][0.0]

    def test_exchange_ablation_saves_payload(self, tiny_scale):
        result = run_exchange_ablation(tiny_scale, cycles=4)
        assert result.payload_savings_factor > 1.0
        assert "savings factor" in result.render()
