"""Tests for profile digests and the wire-size model."""

from __future__ import annotations

import pytest

from repro.data.models import UserProfile
from repro.gossip import (
    DIGEST_BYTES,
    TAGGING_ACTION_BYTES,
    USER_ID_BYTES,
    DigestCache,
    DigestProvider,
    digest_message_size,
    make_digest,
    partial_result_size,
    profile_length,
    profile_storage_bytes,
    remaining_list_size,
    tagging_actions_size,
)


class TestSizes:
    def test_paper_constants(self):
        assert USER_ID_BYTES == 4
        assert TAGGING_ACTION_BYTES == 36
        assert DIGEST_BYTES == 2500

    def test_digest_message_size(self):
        assert digest_message_size(0) == 0
        assert digest_message_size(10) == 10 * (2500 + 4)

    def test_tagging_actions_size(self):
        assert tagging_actions_size(3) == 108

    def test_remaining_list_size(self):
        assert remaining_list_size(990) == 3960

    def test_partial_result_size(self):
        assert partial_result_size(10, 5) == 10 * 20 + 5 * 4

    def test_profile_length_and_storage(self):
        assert profile_length(249) == 249
        assert profile_storage_bytes(249) == 249 * 36

    @pytest.mark.parametrize(
        "function",
        [
            digest_message_size,
            tagging_actions_size,
            remaining_list_size,
            profile_length,
        ],
    )
    def test_negative_counts_rejected(self, function):
        with pytest.raises(ValueError):
            function(-1)

    def test_partial_result_rejects_negative(self):
        with pytest.raises(ValueError):
            partial_result_size(-1, 0)

    def test_paper_storage_example(self):
        """The paper: 10 stored profiles of ~250 actions each fit in ~12.5 MB
        only when the whole personal network's 1000 profiles are counted; a
        sanity check that our per-profile cost model is in the same regime."""
        one_profile = profile_storage_bytes(349)
        assert one_profile == pytest.approx(12_564, rel=0.01)


class TestDigest:
    def test_digest_covers_profile_items(self):
        profile = UserProfile(1, [(10, 1), (20, 2), (30, 3)])
        digest = make_digest(profile, num_bits=512, num_hashes=4)
        assert all(digest.might_contain_item(item) for item in (10, 20, 30))
        assert digest.user_id == 1
        assert digest.version == profile.version

    def test_shares_item_with(self):
        profile = UserProfile(1, [(10, 1)])
        digest = make_digest(profile, num_bits=512, num_hashes=4)
        assert digest.shares_item_with([99, 10])
        assert not digest.shares_item_with([])

    def test_wire_size_is_paper_constant(self):
        profile = UserProfile(1, [(10, 1)])
        digest = make_digest(profile, num_bits=64, num_hashes=2)
        assert digest.size_in_bytes == DIGEST_BYTES

    def test_same_version_as(self):
        profile = UserProfile(1, [(10, 1)])
        a = make_digest(profile, num_bits=64, num_hashes=2)
        b = make_digest(profile, num_bits=64, num_hashes=2)
        assert a.same_version_as(b)
        profile.add(11, 2)
        c = make_digest(profile, num_bits=64, num_hashes=2)
        assert not a.same_version_as(c)


class TestDigestProvider:
    def test_caches_until_profile_changes(self):
        profile = UserProfile(1, [(10, 1)])
        provider = DigestProvider(profile, num_bits=128, num_hashes=2)
        first = provider.current()
        assert provider.current() is first
        profile.add(20, 2)
        second = provider.current()
        assert second is not first
        assert second.version == profile.version
        assert second.might_contain_item(20)


class TestDigestCache:
    def test_digest_for_is_version_keyed(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        profile = UserProfile(1, [(10, 1), (11, 2)])
        first = cache.digest_for(profile)
        assert cache.digest_for(profile) is first
        profile.add(12, 3)
        second = cache.digest_for(profile)
        assert second is not first
        assert second.version == profile.version
        assert second == make_digest(profile, num_bits=256, num_hashes=3)

    def test_common_items_matches_direct_probe(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        receiver = UserProfile(1, [(10, 1), (11, 2), (99, 5)])
        subject = UserProfile(2, [(11, 7), (42, 1)])
        digest = cache.digest_for(subject)
        assert cache.common_items(receiver, digest) == frozenset(
            digest.common_items_with(receiver.items)
        )
        assert cache.shares_item(receiver, digest) == digest.shares_item_with(
            receiver.items
        )

    def test_common_items_memo_invalidated_by_either_version(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        receiver = UserProfile(1, [(10, 1)])
        subject = UserProfile(2, [(20, 1)])
        digest = cache.digest_for(subject)
        assert cache.common_items(receiver, digest) == frozenset()
        # Receiver-side change: the new common item must appear.
        receiver.add(20, 9)
        assert 20 in cache.common_items(receiver, digest)
        # Subject-side change: a fresh digest version must be re-probed.
        subject.add(10, 9)
        digest2 = cache.digest_for(subject)
        assert 10 in cache.common_items(receiver, digest2)

    def test_batch_prices_the_whole_candidate_set(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        receiver = UserProfile(1, [(10, 1), (20, 2)])
        subjects = [UserProfile(2, [(10, 5)]), UserProfile(3, [(30, 5)])]
        digests = [cache.digest_for(s) for s in subjects]
        batch = cache.common_items_batch(receiver, digests)
        assert set(batch) == {2, 3}
        for digest in digests:
            assert batch[digest.user_id] == frozenset(
                digest.common_items_with(receiver.items)
            )

    def test_foreign_geometry_falls_back_to_direct_probe(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        receiver = UserProfile(1, [(10, 1)])
        foreign = make_digest(UserProfile(2, [(10, 5)]), num_bits=64, num_hashes=2)
        assert cache.common_items(receiver, foreign) == frozenset(
            foreign.common_items_with(receiver.items)
        )
        assert cache.stats()["common_pairs"] == 0  # fallback is not memoized

    def test_evict_profiles_reclaims_superseded_state(self):
        cache = DigestCache(num_bits=256, num_hashes=3)
        profile = UserProfile(7, [(10, 1)])
        cache.digest_for(profile)
        cache.common_items(profile, cache.digest_for(profile))
        assert cache.stats()["digests"] == 1
        cache.evict_profiles([7])
        assert cache.stats()["digests"] == 0
        assert cache.stats()["rows"] == 0
        # Correctness never depended on eviction: the next read rebuilds.
        assert cache.digest_for(profile).version == profile.version

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DigestCache(num_bits=0)
        with pytest.raises(ValueError):
            DigestCache(num_hashes=0)
