"""Tests for profile digests and the wire-size model."""

from __future__ import annotations

import pytest

from repro.data.models import UserProfile
from repro.gossip import (
    DIGEST_BYTES,
    TAGGING_ACTION_BYTES,
    USER_ID_BYTES,
    DigestProvider,
    digest_message_size,
    make_digest,
    partial_result_size,
    profile_length,
    profile_storage_bytes,
    remaining_list_size,
    tagging_actions_size,
)


class TestSizes:
    def test_paper_constants(self):
        assert USER_ID_BYTES == 4
        assert TAGGING_ACTION_BYTES == 36
        assert DIGEST_BYTES == 2500

    def test_digest_message_size(self):
        assert digest_message_size(0) == 0
        assert digest_message_size(10) == 10 * (2500 + 4)

    def test_tagging_actions_size(self):
        assert tagging_actions_size(3) == 108

    def test_remaining_list_size(self):
        assert remaining_list_size(990) == 3960

    def test_partial_result_size(self):
        assert partial_result_size(10, 5) == 10 * 20 + 5 * 4

    def test_profile_length_and_storage(self):
        assert profile_length(249) == 249
        assert profile_storage_bytes(249) == 249 * 36

    @pytest.mark.parametrize(
        "function",
        [
            digest_message_size,
            tagging_actions_size,
            remaining_list_size,
            profile_length,
        ],
    )
    def test_negative_counts_rejected(self, function):
        with pytest.raises(ValueError):
            function(-1)

    def test_partial_result_rejects_negative(self):
        with pytest.raises(ValueError):
            partial_result_size(-1, 0)

    def test_paper_storage_example(self):
        """The paper: 10 stored profiles of ~250 actions each fit in ~12.5 MB
        only when the whole personal network's 1000 profiles are counted; a
        sanity check that our per-profile cost model is in the same regime."""
        one_profile = profile_storage_bytes(349)
        assert one_profile == pytest.approx(12_564, rel=0.01)


class TestDigest:
    def test_digest_covers_profile_items(self):
        profile = UserProfile(1, [(10, 1), (20, 2), (30, 3)])
        digest = make_digest(profile, num_bits=512, num_hashes=4)
        assert all(digest.might_contain_item(item) for item in (10, 20, 30))
        assert digest.user_id == 1
        assert digest.version == profile.version

    def test_shares_item_with(self):
        profile = UserProfile(1, [(10, 1)])
        digest = make_digest(profile, num_bits=512, num_hashes=4)
        assert digest.shares_item_with([99, 10])
        assert not digest.shares_item_with([])

    def test_wire_size_is_paper_constant(self):
        profile = UserProfile(1, [(10, 1)])
        digest = make_digest(profile, num_bits=64, num_hashes=2)
        assert digest.size_in_bytes == DIGEST_BYTES

    def test_same_version_as(self):
        profile = UserProfile(1, [(10, 1)])
        a = make_digest(profile, num_bits=64, num_hashes=2)
        b = make_digest(profile, num_bits=64, num_hashes=2)
        assert a.same_version_as(b)
        profile.add(11, 2)
        c = make_digest(profile, num_bits=64, num_hashes=2)
        assert not a.same_version_as(c)


class TestDigestProvider:
    def test_caches_until_profile_changes(self):
        profile = UserProfile(1, [(10, 1)])
        provider = DigestProvider(profile, num_bits=128, num_hashes=2)
        first = provider.current()
        assert provider.current() is first
        profile.add(20, 2)
        second = provider.current()
        assert second is not first
        assert second.version == profile.version
        assert second.might_contain_item(20)
