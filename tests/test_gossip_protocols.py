"""Tests for peer sampling and the lazy (Algorithm 1) exchange.

The protocols are exercised through real :class:`P3QNode` instances wired
into a :class:`Network`, which is both the production configuration and the
most direct way to observe their effects.
"""

from __future__ import annotations

import pytest

from repro.data.models import Dataset
from repro.gossip.peer_sampling import PeerSamplingProtocol
from repro.gossip.profile_exchange import LazyExchangeProtocol
from repro.p3q.config import P3QConfig
from repro.p3q.node import P3QNode
from repro.simulator.network import Network
from repro.simulator.stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_FULL_PROFILES,
    KIND_RANDOM_VIEW,
)


def build_network(dataset: Dataset, config: P3QConfig):
    """Create one node per user, all registered in a fresh network."""
    network = Network()
    nodes = {}
    for profile in dataset.profiles():
        node = P3QNode(profile, config)
        nodes[node.node_id] = node
        network.add_node(node)
    return network, nodes


def wire_protocol(nodes, protocol) -> None:
    """Install a protocol instance on every node, as a simulation would.

    The transport delivers messages to the *receiver's* protocol objects, so
    a test exercising a non-default protocol must share it across the nodes
    (production wiring: one instance per :class:`P3QSimulation`).
    """
    attr = "lazy" if isinstance(protocol, LazyExchangeProtocol) else "peer_sampling"
    for node in nodes.values():
        setattr(node, attr, protocol)


@pytest.fixture()
def gossip_config() -> P3QConfig:
    return P3QConfig(
        network_size=4,
        storage=2,
        random_view_size=3,
        digest_bits=1_024,
        digest_hashes=4,
        seed=1,
    )


@pytest.fixture()
def wired(tiny_dataset, gossip_config):
    network, nodes = build_network(tiny_dataset, gossip_config)
    # Seed every random view with every other node so discovery can start.
    for node in nodes.values():
        node.bootstrap_random_view(
            [nodes[other].own_digest() for other in nodes if other != node.node_id]
        )
    return network, nodes


class TestPeerSampling:
    def test_exchange_mixes_views(self, wired):
        network, nodes = wired
        protocol = PeerSamplingProtocol()
        partner = protocol.run_cycle(nodes[0], network)
        assert partner in nodes
        assert len(nodes[0].random_view) <= nodes[0].random_view.size

    def test_exchange_accounts_traffic(self, wired):
        network, nodes = wired
        PeerSamplingProtocol().run_cycle(nodes[0], network)
        assert network.stats.total_bytes(KIND_RANDOM_VIEW) > 0

    def test_offline_partner_skipped(self, wired):
        network, nodes = wired
        network.depart([uid for uid in nodes if uid != 0])
        partner = PeerSamplingProtocol().run_cycle(nodes[0], network)
        assert partner is None

    def test_empty_view_returns_none(self, tiny_dataset, gossip_config):
        network, nodes = build_network(tiny_dataset, gossip_config)
        assert PeerSamplingProtocol().run_cycle(nodes[0], network) is None


class TestLazyExchange:
    def test_similar_users_discover_each_other(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol(account_traffic=True)
        for _ in range(3):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        # Users 0 and 1 share 3 tagging actions: they must be neighbours.
        assert 1 in nodes[0].personal_network
        assert 0 in nodes[1].personal_network
        assert nodes[0].personal_network.score_of(1) == 3

    def test_disjoint_users_never_become_neighbours(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        # User 3 shares nothing with user 0.
        assert 3 not in nodes[0].personal_network
        assert 0 not in nodes[3].personal_network

    def test_scores_match_true_overlap(self, wired, tiny_dataset):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        for uid, node in nodes.items():
            for entry in node.personal_network.ranked_entries():
                true_overlap = len(
                    tiny_dataset.profile(uid).actions
                    & tiny_dataset.profile(entry.user_id).actions
                )
                assert entry.score == true_overlap

    def test_stored_profiles_limited_to_budget(self, wired, gossip_config):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        for node in nodes.values():
            assert len(node.personal_network.stored_ids()) <= gossip_config.storage_for(node.node_id)

    def test_stored_replicas_match_source_profiles(self, wired, tiny_dataset):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        for node in nodes.values():
            for uid, replica in node.personal_network.stored_profiles().items():
                assert replica.actions == tiny_dataset.profile(uid).actions

    def test_traffic_kinds_recorded(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(3):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        kinds = network.stats.bytes_by_kind()
        assert kinds.get(KIND_DIGESTS, 0) > 0
        assert kinds.get(KIND_COMMON_ITEMS, 0) >= 0
        assert kinds.get(KIND_FULL_PROFILES, 0) > 0

    def test_unchanged_known_profiles_are_not_refetched(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        baseline = network.stats.total_bytes(KIND_FULL_PROFILES)
        # Run more cycles without any profile change: no new full profiles
        # should be transferred (digests unchanged -> dropped in step 1).
        for _ in range(3):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        assert network.stats.total_bytes(KIND_FULL_PROFILES) == baseline

    def test_profile_change_triggers_refresh(self, wired, tiny_dataset):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        # User 1 tags something new; user 0 stores user 1's profile.
        assert nodes[0].personal_network.has_stored_profile(1)
        nodes[1].profile.add(500, 999)
        target_version = nodes[1].profile.version
        for _ in range(4):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        replica = nodes[0].personal_network.stored_profiles()[1]
        assert replica.version == target_version
        assert (500, 999) in replica

    def test_offline_partner_does_not_break_cycle(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol()
        for _ in range(2):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        network.depart([1])
        for _ in range(2):
            for node in nodes.values():
                if network.is_online(node.node_id):
                    protocol.run_cycle(node, network)
        assert True  # reaching here without exceptions is the point

    def test_non_three_step_mode_ships_profiles_immediately(self, wired):
        network, nodes = wired
        protocol = LazyExchangeProtocol(three_step=False)
        wire_protocol(nodes, protocol)
        for _ in range(3):
            for node in nodes.values():
                protocol.run_cycle(node, network)
        assert 1 in nodes[0].personal_network
        assert network.stats.total_bytes(KIND_COMMON_ITEMS) == 0

    def test_exchange_size_validation(self):
        with pytest.raises(ValueError):
            LazyExchangeProtocol(exchange_size=0)
