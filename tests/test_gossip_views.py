"""Tests for the personal network and random view data structures."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.models import UserProfile
from repro.gossip.digest import make_digest
from repro.gossip.views import PersonalNetwork, RandomView


def _digest(user_id: int, items=(1, 2), version=None):
    profile = UserProfile(user_id, [(item, 0) for item in items])
    digest = make_digest(profile, num_bits=256, num_hashes=3)
    if version is not None:
        return type(digest)(user_id=user_id, version=version, bloom=digest.bloom)
    return digest


class TestPersonalNetwork:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            PersonalNetwork(0, size=0, storage=1)
        with pytest.raises(ValueError):
            PersonalNetwork(0, size=5, storage=-1)

    def test_storage_clamped_to_size(self):
        network = PersonalNetwork(0, size=3, storage=10)
        assert network.storage == 3

    def test_consider_ignores_self_and_non_positive_scores(self):
        network = PersonalNetwork(0, size=3, storage=1)
        assert not network.consider(0, 5.0, _digest(0))
        assert not network.consider(1, 0.0, _digest(1))
        assert len(network) == 0

    def test_consider_keeps_best_s_entries(self):
        network = PersonalNetwork(0, size=2, storage=1)
        network.consider(1, 1.0, _digest(1))
        network.consider(2, 5.0, _digest(2))
        network.consider(3, 3.0, _digest(3))
        assert network.member_ids() == [2, 3]

    def test_zero_score_reconsideration_removes_member(self):
        network = PersonalNetwork(0, size=3, storage=1)
        network.consider(1, 2.0, _digest(1))
        network.consider(1, 0.0, _digest(1))
        assert 1 not in network

    def test_store_profile_only_for_top_c(self):
        network = PersonalNetwork(0, size=3, storage=1)
        network.consider(1, 5.0, _digest(1))
        network.consider(2, 1.0, _digest(2))
        assert network.store_profile(1, UserProfile(1, [(1, 0)]))
        assert not network.store_profile(2, UserProfile(2, [(2, 0)]))
        assert network.stored_ids() == [1]

    def test_storage_budget_enforced_on_better_arrivals(self):
        network = PersonalNetwork(0, size=3, storage=1)
        network.consider(1, 2.0, _digest(1))
        network.store_profile(1, UserProfile(1, [(1, 0)]))
        network.consider(2, 9.0, _digest(2))
        # User 2 outranks user 1; user 1's replica must have been demoted.
        assert network.stored_ids() == []
        assert network.profiles_wanted() == [2]

    def test_unstored_ids_is_the_remaining_list(self):
        network = PersonalNetwork(0, size=3, storage=1)
        network.consider(1, 5.0, _digest(1))
        network.consider(2, 3.0, _digest(2))
        network.consider(3, 1.0, _digest(3))
        network.store_profile(1, UserProfile(1, [(1, 0)]))
        assert network.unstored_ids() == [2, 3]

    def test_profiles_wanted_includes_stale_replicas(self):
        network = PersonalNetwork(0, size=2, storage=2)
        network.consider(1, 5.0, _digest(1, version=0))
        network.store_profile(1, UserProfile(1, [(1, 0)]))
        assert network.profiles_wanted() == []
        network.consider(1, 5.0, _digest(1, version=3))
        assert network.profiles_wanted() == [1]

    def test_select_oldest_prefers_never_gossiped(self):
        network = PersonalNetwork(0, size=3, storage=3)
        network.consider(1, 5.0, _digest(1))
        network.consider(2, 3.0, _digest(2))
        first = network.select_oldest()
        network.mark_gossiped(first)
        second = network.select_oldest()
        assert second != first

    def test_mark_gossiped_ages_other_entries(self):
        network = PersonalNetwork(0, size=3, storage=3)
        network.consider(1, 5.0, _digest(1))
        network.consider(2, 3.0, _digest(2))
        network.mark_gossiped(1)
        assert network.entry(1).timestamp == 0
        assert network.entry(2).timestamp == 1

    def test_select_oldest_with_restriction(self):
        network = PersonalNetwork(0, size=3, storage=3)
        network.consider(1, 5.0, _digest(1))
        network.consider(2, 3.0, _digest(2))
        assert network.select_oldest(restrict_to=[2]) == 2
        assert network.select_oldest(restrict_to=[99]) is None

    def test_stored_profile_length(self):
        network = PersonalNetwork(0, size=2, storage=2)
        network.consider(1, 5.0, _digest(1))
        network.store_profile(1, UserProfile(1, [(1, 0), (2, 0), (3, 0)]))
        assert network.stored_profile_length() == 3

    def test_drop_member(self):
        network = PersonalNetwork(0, size=2, storage=2)
        network.consider(1, 5.0, _digest(1))
        network.drop_member(1)
        assert 1 not in network

    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.floats(min_value=0.0, max_value=50.0)),
            max_size=60,
        ),
        st.integers(1, 10),
        st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_arbitrary_considerations(self, updates, size, storage):
        """Whatever the update sequence: at most ``size`` members, all with
        positive scores, stored replicas only among the top ``storage``."""
        network = PersonalNetwork(0, size=size, storage=storage)
        for user_id, score in updates:
            network.consider(user_id, score, _digest(user_id))
            if network.profiles_wanted():
                wanted = network.profiles_wanted()[0]
                network.store_profile(wanted, UserProfile(wanted, [(1, 0)]))
        assert len(network) <= size
        assert all(entry.score > 0 for entry in network.ranked_entries())
        top = set(network.member_ids()[: network.storage])
        assert set(network.stored_ids()) <= top
        assert len(network.stored_ids()) <= network.storage
        # Remaining list plus stored list partitions the membership.
        assert sorted(network.stored_ids() + network.unstored_ids()) == sorted(
            network.member_ids()
        )


class TestRandomView:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RandomView(0, size=0)

    def test_add_excludes_owner(self):
        view = RandomView(0, size=3)
        view.add(_digest(0))
        assert len(view) == 0

    def test_merge_caps_size(self):
        view = RandomView(0, size=3)
        rng = random.Random(1)
        view.merge([_digest(i) for i in range(1, 10)], rng)
        assert len(view) == 3

    def test_merge_prefers_newer_versions(self):
        view = RandomView(0, size=5)
        rng = random.Random(1)
        view.merge([_digest(1, version=0)], rng)
        view.merge([_digest(1, version=4)], rng)
        assert view.digest_of(1).version == 4

    def test_merge_never_contains_owner(self):
        view = RandomView(7, size=5)
        view.merge([_digest(7), _digest(1)], random.Random(0))
        assert 7 not in view
        assert 1 in view

    def test_random_partner_none_when_empty(self):
        assert RandomView(0, size=2).random_partner(random.Random(0)) is None

    def test_random_partner_is_a_member(self):
        view = RandomView(0, size=4)
        view.merge([_digest(i) for i in range(1, 5)], random.Random(0))
        partner = view.random_partner(random.Random(1))
        assert partner in view.member_ids()

    @given(st.sets(st.integers(1, 50), max_size=40), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_view_never_exceeds_size(self, user_ids, size):
        view = RandomView(0, size=size)
        view.merge([_digest(uid) for uid in user_ids], random.Random(3))
        assert len(view) <= size
        assert set(view.member_ids()) <= user_ids
