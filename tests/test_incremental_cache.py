"""Property tests for the incremental runtime's cache coherence.

The incremental runtime (``docs/ARCHITECTURE.md``) never recomputes digests,
probe rows, view rankings or storage budgets unless a version bump or a
score/membership mutation forces it.  The property pinned here is the one
that makes that safe: after ANY randomized interleaving of profile updates,
churn departures/rejoins, lazy exchanges and eager query cycles, every
cached structure must be identical to a from-scratch rebuild of the same
state.  A stale-cache bug -- the classic failure mode of incremental systems
-- shows up as a divergence between the cached view and the rebuild.
"""

from __future__ import annotations

import random

import pytest

from repro.data import SyntheticConfig, generate_dataset
from repro.data.models import ChangeDay, ProfileChange
from repro.data.queries import QueryWorkloadGenerator
from repro.gossip.digest import make_digest
from repro.p3q import P3QConfig, P3QSimulation


def _build(seed: int) -> P3QSimulation:
    dataset = generate_dataset(
        SyntheticConfig(num_users=36, num_items=220, num_tags=70, seed=seed)
    )
    config = P3QConfig(
        network_size=10,
        storage=4,
        random_view_size=5,
        digest_bits=1_024,
        digest_hashes=4,
        seed=seed,
    )
    sim = P3QSimulation(dataset, config)
    sim.bootstrap_random_views()
    return sim


def _random_change_day(sim: P3QSimulation, rng: random.Random, day: int) -> ChangeDay:
    users = rng.sample(sim.dataset.user_ids, k=rng.randint(1, 6))
    changes = []
    for uid in users:
        actions = tuple(
            (rng.randrange(10_000, 10_400), rng.randrange(5_000, 5_100))
            for _ in range(rng.randint(1, 4))
        )
        changes.append(ProfileChange(user_id=uid, new_actions=actions))
    return ChangeDay(day=day, changes=tuple(changes))


def _assert_caches_match_rebuild(sim: P3QSimulation) -> None:
    config = sim.config
    cache = sim.digest_cache
    for node in sim.nodes.values():
        profile = node.profile

        # 1. The cached own digest equals a from-scratch digest build.
        fresh = make_digest(
            profile, num_bits=config.digest_bits, num_hashes=config.digest_hashes
        )
        assert node.own_digest() == fresh, f"stale digest for node {node.node_id}"

        # 2. Cached common-item probes equal direct (uncached) Bloom probes,
        #    for every digest this node can currently see in its views.
        seen = list(node.random_view.digests()) + [
            entry.digest for entry in node.personal_network.ranked_entries()
        ]
        for digest in seen:
            cached = cache.common_items(profile, digest)
            direct = digest.common_items_with(profile.items)
            assert cached == frozenset(direct), (
                f"stale common-items memo for receiver {node.node_id} / "
                f"subject {digest.user_id} v{digest.version}"
            )

        # 3. The cached ranking equals a from-scratch sort, and the replica
        #    budget (profiles only on the top-c entries) holds.
        network = node.personal_network
        ranked_ids = [entry.user_id for entry in network.ranked_entries()]
        rebuilt = sorted(
            (network.entry(uid) for uid in list(network.member_ids())),
            key=lambda e: (-e.score, e.user_id),
        )
        assert ranked_ids == [entry.user_id for entry in rebuilt], (
            f"stale personal-network ranking for node {node.node_id}"
        )
        top_c = set(ranked_ids[: network.storage])
        for entry in rebuilt:
            if entry.profile is not None:
                assert entry.user_id in top_c, (
                    f"replica outside the top-c budget at node {node.node_id}"
                )

        # 4. The random view's cached membership matches its entries.
        view = node.random_view
        assert view.member_ids() == sorted(
            digest.user_id for digest in view.digests()
        )
        for digest in view.digests():
            assert view.digest_of(digest.user_id) is digest

        # 5. COW replicas: a profile's version counts its actions exactly
        #    (every add bumps once), so a replica that aliased a mutating
        #    original would immediately break this equality.
        for replica in network.stored_profiles().values():
            assert len(replica) == replica.version
            assert replica.version <= sim.nodes[replica.user_id].profile.version


@pytest.mark.parametrize("master_seed", [0, 1, 2])
def test_random_interleaving_matches_from_scratch_rebuild(master_seed):
    """Updates, churn rejoins and exchanges never leave a cache stale."""
    rng = random.Random(f"incremental-cache/{master_seed}")
    sim = _build(seed=master_seed)
    workload = QueryWorkloadGenerator(sim.dataset, seed=master_seed)
    offline: list[int] = []
    issued = 0

    for step in range(14):
        op = rng.choice(
            ["lazy", "lazy", "change", "depart", "rejoin", "eager", "change+lazy"]
        )
        if op in ("change", "change+lazy"):
            sim.apply_profile_changes(_random_change_day(sim, rng, day=step))
        if op == "depart" and len(sim.network.online_ids()) > 8:
            departing = rng.sample(sim.network.online_ids(), k=rng.randint(1, 4))
            sim.depart_users(departing)
            offline.extend(departing)
        if op == "rejoin" and offline:
            returning = [offline.pop() for _ in range(min(len(offline), rng.randint(1, 3)))]
            sim.rejoin_users(returning)
        if op in ("lazy", "change+lazy"):
            sim.run_lazy(1)
        if op == "eager":
            online = sim.network.online_ids()
            queriers = rng.sample(online, k=min(2, len(online)))
            sim.issue_queries(
                [workload.query_for(user_id=uid, query_id=1_000 + issued + i)
                 for i, uid in enumerate(queriers)]
            )
            issued += len(queriers)
            sim.run_eager(cycles=2)

        _assert_caches_match_rebuild(sim)


def test_profile_change_invalidates_digest_between_cycles():
    """A version bump mid-run is visible in the very next advertised digest."""
    sim = _build(seed=7)
    sim.run_lazy(1)
    victim = sim.nodes[sim.dataset.user_ids[0]]
    before = victim.own_digest()
    day = ChangeDay(
        day=1,
        changes=(ProfileChange(user_id=victim.node_id, new_actions=((99_991, 9_991),)),),
    )
    sim.apply_profile_changes(day)
    after = victim.own_digest()
    assert after.version == before.version + 1
    assert after.might_contain_item(99_991)
    assert after == make_digest(
        victim.profile, num_bits=sim.config.digest_bits, num_hashes=sim.config.digest_hashes
    )


def test_dirty_set_flush_evicts_superseded_state():
    """The engine's post-cycle flush drops superseded per-user cache state."""
    sim = _build(seed=11)
    sim.run_lazy(2)
    cache = sim.digest_cache
    victim = sim.dataset.user_ids[1]
    assert victim in cache._digests
    day = ChangeDay(
        day=1,
        changes=(ProfileChange(user_id=victim, new_actions=((88_888, 8_888),)),),
    )
    sim.apply_profile_changes(day)
    # The dirty set drains at the next cycle boundary, not synchronously.
    sim.run_lazy(1)
    entry = cache._digests.get(victim)
    assert entry is None or entry.version == sim.nodes[victim].profile.version
    # And the next digest request serves the new version.
    assert cache.digest_for(sim.nodes[victim].profile).version == (
        sim.nodes[victim].profile.version
    )
