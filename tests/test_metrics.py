"""Tests for the evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    average_recall,
    average_success_ratio,
    average_update_rate,
    fraction_below_full_recall,
    fraction_with_complete_new_network,
    profiles_to_update,
    recall,
    recall_per_cycle,
    success_ratio,
    update_rate,
)
from repro.metrics.bandwidth import (
    average_partial_result_messages,
    average_query_bytes,
    query_traffic_breakdown,
    storage_requirements,
)
from repro.p3q.query import CycleSnapshot
from repro.simulator.stats import (
    KIND_PARTIAL_RESULT,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
    StatsCollector,
)


class TestRecall:
    def test_perfect_recall(self):
        assert recall([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial_recall(self):
        assert recall([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_empty_reference_is_full_recall(self):
        assert recall([], []) == 1.0

    def test_order_and_duplicates_do_not_matter(self):
        assert recall([3, 2, 1, 1], [1, 2, 3]) == 1.0

    def test_average_recall_counts_missing_queries_as_zero(self):
        references = {1: [1, 2], 2: [3]}
        results = {1: [1, 2]}
        assert average_recall(results, references) == pytest.approx(0.5)

    def test_average_recall_empty_reference_set(self):
        assert average_recall({}, {}) == 1.0

    def test_fraction_below_full_recall(self):
        references = {1: [1], 2: [2], 3: [3]}
        results = {1: [1], 2: [9], 3: [3]}
        assert fraction_below_full_recall(results, references) == pytest.approx(1 / 3)

    def test_recall_per_cycle_carries_results_forward(self):
        snapshots = {
            1: [
                CycleSnapshot(cycle=0, top_k=[(9, 1.0)], profiles_used=1, profiles_total=2),
                CycleSnapshot(cycle=2, top_k=[(1, 2.0)], profiles_used=2, profiles_total=2),
            ]
        }
        series = recall_per_cycle(snapshots, {1: [1]}, cycles=3)
        assert series == [0.0, 0.0, 1.0, 1.0]

    @given(
        st.sets(st.integers(0, 30), max_size=10),
        st.sets(st.integers(0, 30), min_size=1, max_size=10),
    )
    @settings(max_examples=60)
    def test_recall_bounds(self, retrieved, relevant):
        value = recall(sorted(retrieved), sorted(relevant))
        assert 0.0 <= value <= 1.0
        if relevant <= retrieved:
            assert value == 1.0


class TestConvergenceMetrics:
    def test_success_ratio(self):
        assert success_ratio([1, 2, 3, 4], [1, 2]) == 0.5
        assert success_ratio([], [1]) == 1.0

    def test_average_success_ratio_full_knowledge(self, synthetic_ideal, synthetic_dataset):
        discovered = {
            uid: synthetic_ideal.neighbour_ids(uid) for uid in synthetic_dataset.user_ids
        }
        assert average_success_ratio(synthetic_ideal, discovered) == pytest.approx(1.0)

    def test_average_success_ratio_no_knowledge(self, synthetic_ideal):
        value = average_success_ratio(synthetic_ideal, {})
        assert 0.0 <= value < 0.5

    def test_fraction_with_complete_new_network(self):
        required = {1: {10, 11}, 2: {12}}
        discovered = {1: [10, 11, 99], 2: [13]}
        assert fraction_with_complete_new_network(required, discovered) == 0.5
        assert fraction_with_complete_new_network({}, discovered) == 1.0


class TestFreshnessMetrics:
    def test_update_rate_none_when_nothing_to_update(self):
        assert update_rate({1: 0}, {1: 0, 2: 3}, changed_users={2}) is None

    def test_update_rate_counts_fresh_replicas(self):
        stored = {1: 2, 2: 0}
        current = {1: 2, 2: 3}
        assert update_rate(stored, current, changed_users={1, 2}) == 0.5

    def test_average_update_rate_excludes_unaffected_owners(self):
        replicas = {10: {1: 0}, 11: {2: 5}}
        current = {1: 3, 2: 5}
        # Owner 10 stores a stale replica of changed user 1; owner 11 stores
        # user 2 who did not change -> only owner 10 enters the average.
        assert average_update_rate(replicas, current, changed_users={1}) == 0.0

    def test_average_update_rate_restrict_to(self):
        replicas = {10: {1: 0}, 11: {1: 3}}
        current = {1: 3}
        assert average_update_rate(replicas, current, {1}, restrict_to=[11]) == 1.0

    def test_average_update_rate_defaults_to_one(self):
        assert average_update_rate({}, {}, set()) == 1.0

    def test_profiles_to_update(self):
        replicas = {10: {1: 0, 2: 0}, 11: {3: 0}}
        result = profiles_to_update(replicas, changed_users={1, 2})
        assert result == {10: 2}


class TestBandwidthMetrics:
    def _stats(self) -> StatsCollector:
        stats = StatsCollector()
        stats.record(0, 1, 2, KIND_REMAINING_FORWARD, 100, query_id=1)
        stats.record(0, 2, 1, KIND_REMAINING_RETURN, 40, query_id=1)
        stats.record(0, 2, 0, KIND_PARTIAL_RESULT, 300, query_id=1)
        stats.record(1, 3, 0, KIND_PARTIAL_RESULT, 500, query_id=2)
        return stats

    def test_query_traffic_breakdown(self):
        rows = query_traffic_breakdown(self._stats())
        assert len(rows) == 2
        by_id = {row.query_id: row for row in rows}
        assert by_id[1].partial_results_bytes == 300
        assert by_id[1].forwarded_remaining_bytes == 100
        assert by_id[1].returned_remaining_bytes == 40
        assert by_id[1].total_bytes == 440
        assert by_id[2].partial_result_messages == 1

    def test_rows_sorted_by_partial_result_bytes(self):
        rows = query_traffic_breakdown(self._stats())
        assert rows[0].partial_results_bytes <= rows[1].partial_results_bytes

    def test_averages(self):
        rows = query_traffic_breakdown(self._stats())
        assert average_query_bytes(rows) == pytest.approx((440 + 500) / 2)
        assert average_partial_result_messages(rows) == pytest.approx(1.0)
        assert average_query_bytes([]) == 0.0

    def test_storage_requirements_sorted(self):
        rows = storage_requirements({1: 50, 2: 10}, {1: 3, 2: 1})
        assert [row.user_id for row in rows] == [2, 1]
        assert rows[1].stored_bytes == 50 * 36
