"""Tests for the analytical model of Section 2.4 (Theorems 2.1-2.4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.p3q.analysis import (
    alpha_sweep,
    cycles_to_complete,
    max_partial_results,
    max_remaining_list_messages,
    max_users_involved,
    optimal_alpha,
    simulate_remaining_list_drain,
    theoretical_longest_after,
)

lengths = st.integers(10, 2_000)
founds = st.integers(1, 50)
alphas = st.floats(min_value=0.01, max_value=0.99)


class TestClosedForm:
    def test_zero_length_takes_zero_cycles(self):
        assert cycles_to_complete(0, 10, 0.5) == 0.0

    def test_alpha_one_is_linear_polling(self):
        assert cycles_to_complete(100, 10, 1.0) == pytest.approx(10.0)

    def test_alpha_zero_is_linear_chain(self):
        assert cycles_to_complete(100, 10, 0.0) == pytest.approx(10.0)

    def test_paper_configuration_is_logarithmic(self):
        """L=990, X=10 at alpha=0.5: R should be O(log2 L) ~ 7 cycles, far
        below the 99 cycles of the linear extremes."""
        r_half = cycles_to_complete(990, 10, 0.5)
        assert 5 <= r_half <= 10
        assert cycles_to_complete(990, 10, 1.0) == pytest.approx(99.0)

    def test_symmetry_around_half(self):
        assert cycles_to_complete(500, 5, 0.3) == pytest.approx(
            cycles_to_complete(500, 5, 0.7)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            cycles_to_complete(-1, 10, 0.5)
        with pytest.raises(ValueError):
            cycles_to_complete(10, 0, 0.5)
        with pytest.raises(ValueError):
            cycles_to_complete(10, 10, 1.5)

    @given(lengths, founds, alphas)
    @settings(max_examples=100)
    def test_alpha_half_is_never_worse(self, length, found, alpha):
        """Theorem 2.2: R(0.5) <= R(alpha) for every alpha."""
        assert cycles_to_complete(length, found, 0.5) <= cycles_to_complete(
            length, found, alpha
        ) + 1e-9

    @given(lengths, founds, st.floats(min_value=0.5, max_value=0.98), st.floats(min_value=0.01, max_value=0.49))
    @settings(max_examples=100)
    def test_monotonicity_on_both_sides(self, length, found, high, low):
        """R is increasing on [0.5, 1) and decreasing on (0, 0.5)."""
        higher = min(0.99, high + 0.01)
        assert cycles_to_complete(length, found, high) <= cycles_to_complete(
            length, found, higher
        ) + 1e-9
        lower = max(0.005, low - 0.005)
        assert cycles_to_complete(length, found, low) <= cycles_to_complete(
            length, found, lower
        ) + 1e-9

    def test_optimal_alpha(self):
        assert optimal_alpha() == 0.5

    def test_alpha_sweep_contains_requested_values(self):
        sweep = alpha_sweep(100, 10, alphas=(0.2, 0.5))
        assert set(sweep) == {0.2, 0.5}


class TestDrainSimulation:
    def test_matches_closed_form_at_half(self):
        trace = simulate_remaining_list_drain(990, 10, 0.5)
        closed = cycles_to_complete(990, 10, 0.5)
        assert trace.cycles == math.ceil(closed) or trace.cycles == math.floor(closed)

    @given(lengths, founds, st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]))
    @settings(max_examples=60, deadline=None)
    def test_simulation_within_one_cycle_of_closed_form(self, length, found, alpha):
        trace = simulate_remaining_list_drain(length, found, alpha)
        closed = cycles_to_complete(length, found, alpha)
        assert abs(trace.cycles - math.ceil(closed)) <= 1

    def test_longest_per_cycle_is_non_increasing(self):
        trace = simulate_remaining_list_drain(500, 7, 0.5)
        values = trace.longest_per_cycle
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_remaining_list_drain(10, 0, 0.5)
        with pytest.raises(ValueError):
            simulate_remaining_list_drain(10, 5, 2.0)

    @given(lengths, founds, st.sampled_from([0.3, 0.5, 0.8]), st.integers(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_theoretical_longest_matches_recurrence(self, length, found, alpha, cycle):
        """The closed-form L(r) from the Theorem 2.1 proof matches an exact
        replay of the recurrence for the longest list."""
        value = float(length)
        base = max(alpha, 1.0 - alpha)
        for _ in range(cycle):
            value = base * max(0.0, value - found)
        assert theoretical_longest_after(length, found, alpha, cycle) == pytest.approx(
            value, abs=1e-6
        )


class TestBounds:
    def test_user_bound_is_power_of_two(self):
        assert max_users_involved(3.0) == 8
        assert max_users_involved(3.2) == 16

    def test_partial_result_bound(self):
        assert max_partial_results(3.0) == 7

    def test_message_bound(self):
        assert max_remaining_list_messages(3.0) == 14

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            max_users_involved(-1)

    @given(lengths, founds)
    @settings(max_examples=60, deadline=None)
    def test_drain_holders_respect_user_bound(self, length, found):
        """The mechanistic drain never involves more holders than 2^R."""
        trace = simulate_remaining_list_drain(length, found, 0.5)
        closed = cycles_to_complete(length, found, 0.5)
        assert trace.holders <= max_users_involved(closed)
