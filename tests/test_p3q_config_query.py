"""Tests for P3QConfig and the querier-side query session state."""

from __future__ import annotations

import pytest

from repro.data.queries import Query
from repro.p3q.config import P3QConfig
from repro.p3q.query import CycleSnapshot, ForwardedQueryState, PartialResult, QuerySession


class TestConfig:
    def test_defaults_are_valid(self):
        config = P3QConfig()
        assert config.alpha == 0.5

    def test_uniform_storage_lookup(self):
        config = P3QConfig(storage=7)
        assert config.storage_for(123) == 7

    def test_per_user_storage_lookup(self):
        config = P3QConfig(storage={1: 5, 2: 10})
        assert config.storage_for(1) == 5
        with pytest.raises(KeyError):
            config.storage_for(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            P3QConfig(network_size=0)
        with pytest.raises(ValueError):
            P3QConfig(alpha=1.5)
        with pytest.raises(ValueError):
            P3QConfig(k=0)
        with pytest.raises(ValueError):
            P3QConfig(random_view_size=0)
        with pytest.raises(ValueError):
            P3QConfig(storage=-1)

    def test_with_storage_and_with_alpha_preserve_other_fields(self):
        config = P3QConfig(network_size=33, storage=4, alpha=0.3, seed=9)
        other = config.with_storage({1: 2}).with_alpha(0.7)
        assert other.network_size == 33
        assert other.seed == 9
        assert other.alpha == 0.7
        assert other.storage_for(1) == 2


def _query() -> Query:
    return Query(query_id=5, querier=0, tags=(1, 2))


def _partial(sender, scores, contributors, cycle=1, query_id=5):
    return PartialResult(
        query_id=query_id,
        sender=sender,
        scores=scores,
        contributors=tuple(contributors),
        cycle=cycle,
    )


class TestQuerySession:
    def test_local_result_creates_cycle_zero_snapshot(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1, 2, 3])
        session.add_local_result({10: 2.0, 20: 1.0}, contributors=[0, 1])
        snapshot = session.close_cycle(0)
        assert snapshot.cycle == 0
        assert snapshot.items == [10, 20]
        assert snapshot.profiles_used == 2
        assert snapshot.profiles_total == 4  # 3 neighbours + querier

    def test_remaining_list_roundtrip(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1, 2, 3])
        session.set_remaining([2, 3])
        assert session.remaining == [2, 3]

    def test_results_refine_over_cycles(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {20: 5.0}, [1]))
        snapshot = session.close_cycle(1)
        assert snapshot.items == [20]

    def test_coverage_and_completion(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({}, contributors=[0])
        session.close_cycle(0)
        assert not session.is_complete()
        session.receive_partial(_partial(1, {1: 1.0}, [1]))
        session.receive_partial(_partial(2, {2: 1.0}, [2]))
        session.close_cycle(1)
        assert session.is_complete()
        assert session.coverage == pytest.approx(1.0)
        assert session.closed

    def test_duplicate_contributors_are_not_double_counted(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 4.0}, [1]))
        session.close_cycle(1)
        # The same contributor arrives again: the list must be ignored.
        session.receive_partial(_partial(9, {10: 4.0}, [1]))
        snapshot = session.close_cycle(2)
        assert snapshot.top_k[0][1] == pytest.approx(5.0)

    def test_completion_triggers_exact_results(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1])
        session.add_local_result({10: 1.0, 20: 3.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 3.0, 30: 1.0}, [1]))
        snapshot = session.close_cycle(1)
        assert snapshot.items == [10, 20]  # 10 -> 4, 20 -> 3, 30 -> 1
        assert session.is_complete()

    def test_snapshot_coverage_property(self):
        snapshot = CycleSnapshot(cycle=1, top_k=[(1, 1.0)], profiles_used=2, profiles_total=4)
        assert snapshot.coverage == 0.5
        empty = CycleSnapshot(cycle=0, top_k=[], profiles_used=0, profiles_total=0)
        assert empty.coverage == 1.0

    def test_current_items_exact_flag(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[])
        session.add_local_result({10: 1.0, 20: 2.0}, contributors=[0])
        session.close_cycle(0)
        assert session.current_items(exact=True) == [20]


class TestChurnRetryDedup:
    """Pins the contributor-granularity dedup in ``close_cycle``.

    Pre-fix, a retried partial result was merged wholesale whenever *any*
    contributor was new, double-counting the scores of the already-counted
    overlap (the skip guard only fired for entirely-stale contributor sets).
    """

    def test_overlap_tainted_retry_is_not_double_counted(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 4.0}, [1]))
        session.close_cycle(1)
        assert session.current_top_k()[0] == (10, pytest.approx(5.0))
        # Churn retry: node 9 took over 2's share and re-aggregated 1's
        # profile into the same list.  Contributor 1 is already counted, so
        # merging would add its 4.0 for item 10 a second time.
        session.receive_partial(_partial(9, {10: 4.0, 30: 2.0}, [1, 2]))
        snapshot = session.close_cycle(2)
        assert snapshot.top_k[0] == (10, pytest.approx(5.0))

    def test_tainted_retry_does_not_mark_new_contributors_used(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 4.0}, [1]))
        session.close_cycle(1)
        session.receive_partial(_partial(9, {10: 4.0, 30: 2.0}, [1, 2]))
        session.close_cycle(2)
        # The dropped list's contribution never reached the merger, so 2
        # must stay outstanding (same accounting as a lost message) and the
        # session must not claim completeness it cannot back with scores.
        assert 2 not in session.profiles_used
        assert not session.is_complete()
        # A clean retry for 2 alone still completes the session exactly.
        session.receive_partial(_partial(2, {30: 2.0}, [2]))
        session.close_cycle(3)
        assert session.is_complete()
        assert session.current_top_k()[0] == (10, pytest.approx(5.0))

    def test_empty_score_overlap_still_counts_new_contributors(self):
        # An empty score list is exact regardless of contributor overlap
        # (nothing could be double counted), so its new contributors count.
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 4.0}, [1]))
        session.close_cycle(1)
        session.receive_partial(_partial(9, {}, [1, 2]))
        session.close_cycle(2)
        assert session.is_complete()
        assert session.current_top_k()[0] == (10, pytest.approx(5.0))


class TestIssueCycleLatency:
    def test_latency_measured_from_issue_cycle(self):
        session = QuerySession(
            _query(), k=1, personal_network_ids=[1], issued_cycle=5
        )
        session.add_local_result({10: 1.0}, contributors=[0], cycle=5)
        session.close_cycle(5)
        assert session.latency_cycles is None
        session.receive_partial(_partial(1, {10: 1.0}, [1], cycle=8))
        session.close_cycle(8)
        assert session.closed
        assert session.closed_cycle == 8
        assert session.latency_cycles == 3

    def test_closed_cycle_pinned_across_later_snapshots(self):
        session = QuerySession(
            _query(), k=1, personal_network_ids=[1], issued_cycle=2
        )
        session.add_local_result({10: 1.0}, contributors=[0, 1], cycle=2)
        session.close_cycle(2)
        assert session.latency_cycles == 0
        # The engine keeps closing cycles on every session it holds; the
        # completion latency must not drift with them.
        session.close_cycle(3)
        session.close_cycle(4)
        assert session.closed_cycle == 2
        assert session.latency_cycles == 0


class TestCoverageSemantics:
    def test_session_and_snapshot_coverage_agree(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2, 3])
        session.add_local_result({10: 1.0}, contributors=[0, 1])
        snapshot = session.close_cycle(0)
        assert session.coverage == pytest.approx(snapshot.coverage)
        assert session.coverage == pytest.approx(0.5)

    def test_churned_away_network_keeps_coverage_below_one(self):
        # The querier's whole personal network departs mid-query: the
        # issue-time expectation stands, so coverage stays below 1 and the
        # session stays open (the serving layer reports it abandoned-at-
        # cutoff instead of silently promoting it to complete).
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2, 3])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        for cycle in range(1, 4):
            snapshot = session.close_cycle(cycle)
        assert snapshot.coverage == pytest.approx(0.25)
        assert session.coverage == pytest.approx(snapshot.coverage)
        assert not session.closed

    def test_contributors_outside_expectation_do_not_inflate_coverage(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        # A replica holder outside the personal network contributes: useful
        # scores, but coverage counts expected profiles only.
        session.receive_partial(_partial(7, {20: 2.0}, [7]))
        snapshot = session.close_cycle(1)
        assert snapshot.coverage == pytest.approx(0.5)
        assert session.coverage == pytest.approx(0.5)


class TestSessionEdgeCases:
    def test_k_larger_than_candidate_item_set(self):
        session = QuerySession(_query(), k=10, personal_network_ids=[1])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {20: 2.0}, [1]))
        snapshot = session.close_cycle(1)
        # Only two candidate items exist: the exact top-k is both of them,
        # ordered by score, with no padding and no crash.
        assert session.is_complete()
        assert snapshot.items == [20, 10]
        assert session.current_items(exact=True) == [20, 10]

    def test_partial_after_closed_does_not_perturb_results(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 1.0}, [1]))
        closed_snapshot = session.close_cycle(1)
        assert session.closed
        # A straggler retry with a *novel* contributor and big scores lands
        # after the querier already read off the exact result.
        session.receive_partial(_partial(8, {99: 100.0}, [8]))
        late_snapshot = session.close_cycle(2)
        assert late_snapshot.top_k == closed_snapshot.top_k
        assert late_snapshot.cycle == 2
        assert session.closed_cycle == 1

    def test_duplicate_delivery_under_lossy_retry(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        # The lossy transport's retry path can deliver the same partial
        # result twice -- both inside one cycle and again a cycle later.
        duplicate = _partial(1, {10: 4.0}, [1])
        session.receive_partial(duplicate)
        session.receive_partial(duplicate)
        session.close_cycle(1)
        session.receive_partial(_partial(1, {10: 4.0}, [1], cycle=2))
        snapshot = session.close_cycle(2)
        assert snapshot.top_k[0] == (10, pytest.approx(5.0))


class TestForwardedState:
    def test_active_reflects_remaining(self):
        state = ForwardedQueryState(query=_query(), remaining=[1, 2])
        assert state.active
        state.remaining = []
        assert not state.active
