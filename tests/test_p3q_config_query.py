"""Tests for P3QConfig and the querier-side query session state."""

from __future__ import annotations

import pytest

from repro.data.queries import Query
from repro.p3q.config import P3QConfig
from repro.p3q.query import CycleSnapshot, ForwardedQueryState, PartialResult, QuerySession


class TestConfig:
    def test_defaults_are_valid(self):
        config = P3QConfig()
        assert config.alpha == 0.5

    def test_uniform_storage_lookup(self):
        config = P3QConfig(storage=7)
        assert config.storage_for(123) == 7

    def test_per_user_storage_lookup(self):
        config = P3QConfig(storage={1: 5, 2: 10})
        assert config.storage_for(1) == 5
        with pytest.raises(KeyError):
            config.storage_for(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            P3QConfig(network_size=0)
        with pytest.raises(ValueError):
            P3QConfig(alpha=1.5)
        with pytest.raises(ValueError):
            P3QConfig(k=0)
        with pytest.raises(ValueError):
            P3QConfig(random_view_size=0)
        with pytest.raises(ValueError):
            P3QConfig(storage=-1)

    def test_with_storage_and_with_alpha_preserve_other_fields(self):
        config = P3QConfig(network_size=33, storage=4, alpha=0.3, seed=9)
        other = config.with_storage({1: 2}).with_alpha(0.7)
        assert other.network_size == 33
        assert other.seed == 9
        assert other.alpha == 0.7
        assert other.storage_for(1) == 2


def _query() -> Query:
    return Query(query_id=5, querier=0, tags=(1, 2))


def _partial(sender, scores, contributors, cycle=1, query_id=5):
    return PartialResult(
        query_id=query_id,
        sender=sender,
        scores=scores,
        contributors=tuple(contributors),
        cycle=cycle,
    )


class TestQuerySession:
    def test_local_result_creates_cycle_zero_snapshot(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1, 2, 3])
        session.add_local_result({10: 2.0, 20: 1.0}, contributors=[0, 1])
        snapshot = session.close_cycle(0)
        assert snapshot.cycle == 0
        assert snapshot.items == [10, 20]
        assert snapshot.profiles_used == 2
        assert snapshot.profiles_total == 4  # 3 neighbours + querier

    def test_remaining_list_roundtrip(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1, 2, 3])
        session.set_remaining([2, 3])
        assert session.remaining == [2, 3]

    def test_results_refine_over_cycles(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {20: 5.0}, [1]))
        snapshot = session.close_cycle(1)
        assert snapshot.items == [20]

    def test_coverage_and_completion(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1, 2])
        session.add_local_result({}, contributors=[0])
        session.close_cycle(0)
        assert not session.is_complete()
        session.receive_partial(_partial(1, {1: 1.0}, [1]))
        session.receive_partial(_partial(2, {2: 1.0}, [2]))
        session.close_cycle(1)
        assert session.is_complete()
        assert session.coverage == pytest.approx(1.0)
        assert session.closed

    def test_duplicate_contributors_are_not_double_counted(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[1])
        session.add_local_result({10: 1.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 4.0}, [1]))
        session.close_cycle(1)
        # The same contributor arrives again: the list must be ignored.
        session.receive_partial(_partial(9, {10: 4.0}, [1]))
        snapshot = session.close_cycle(2)
        assert snapshot.top_k[0][1] == pytest.approx(5.0)

    def test_completion_triggers_exact_results(self):
        session = QuerySession(_query(), k=2, personal_network_ids=[1])
        session.add_local_result({10: 1.0, 20: 3.0}, contributors=[0])
        session.close_cycle(0)
        session.receive_partial(_partial(1, {10: 3.0, 30: 1.0}, [1]))
        snapshot = session.close_cycle(1)
        assert snapshot.items == [10, 20]  # 10 -> 4, 20 -> 3, 30 -> 1
        assert session.is_complete()

    def test_snapshot_coverage_property(self):
        snapshot = CycleSnapshot(cycle=1, top_k=[(1, 1.0)], profiles_used=2, profiles_total=4)
        assert snapshot.coverage == 0.5
        empty = CycleSnapshot(cycle=0, top_k=[], profiles_used=0, profiles_total=0)
        assert empty.coverage == 1.0

    def test_current_items_exact_flag(self):
        session = QuerySession(_query(), k=1, personal_network_ids=[])
        session.add_local_result({10: 1.0, 20: 2.0}, contributors=[0])
        session.close_cycle(0)
        assert session.current_items(exact=True) == [20]


class TestForwardedState:
    def test_active_reflects_remaining(self):
        state = ForwardedQueryState(query=_query(), remaining=[1, 2])
        assert state.active
        state.remaining = []
        assert not state.active
