"""Unit-level tests for the eager gossip protocol (Algorithm 3 mechanics)."""

from __future__ import annotations

import pytest

from repro.p3q.config import P3QConfig
from repro.p3q.eager import EagerGossipProtocol
from repro.p3q.protocol import P3QSimulation
from repro.simulator.stats import (
    KIND_PARTIAL_RESULT,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
)


@pytest.fixture()
def warm(synthetic_dataset, small_config):
    simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
    simulation.warm_start()
    return simulation


def _query_for(simulation, querier):
    from repro.data.queries import QueryWorkloadGenerator

    return QueryWorkloadGenerator(simulation.dataset, seed=9).query_for(querier)


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EagerGossipProtocol(alpha=1.5)


class TestDestinationSelection:
    def test_prefers_personal_network_members(self, warm):
        querier = warm.dataset.user_ids[0]
        node = warm.node(querier)
        remaining = node.personal_network.unstored_ids()
        if not remaining:
            pytest.skip("querier stores her whole network at this storage budget")
        destination = warm.eager.select_destination(node, remaining, warm.network)
        assert destination in remaining
        assert destination in node.personal_network

    def test_skips_offline_candidates(self, warm):
        querier = warm.dataset.user_ids[0]
        node = warm.node(querier)
        remaining = node.personal_network.unstored_ids()
        if len(remaining) < 2:
            pytest.skip("not enough unstored neighbours")
        warm.depart_users(remaining[:-1])
        destination = warm.eager.select_destination(node, remaining, warm.network)
        assert destination == remaining[-1]

    def test_returns_none_when_everyone_is_offline(self, warm):
        querier = warm.dataset.user_ids[0]
        node = warm.node(querier)
        remaining = node.personal_network.unstored_ids()
        if not remaining:
            pytest.skip("querier stores her whole network at this storage budget")
        warm.depart_users(remaining)
        assert warm.eager.select_destination(node, remaining, warm.network) is None

    def test_empty_remaining_list(self, warm):
        querier = warm.dataset.user_ids[0]
        assert warm.eager.select_destination(warm.node(querier), [], warm.network) is None


class TestDestinationProcessing:
    def test_split_respects_alpha(self, warm):
        querier = warm.dataset.user_ids[0]
        query = _query_for(warm, querier)
        node = warm.node(querier)
        # Hand a synthetic remaining list (users whose profiles the
        # destination does not store) to check the split arithmetic.
        destination = warm.node(warm.dataset.user_ids[1])
        stored = set(destination.personal_network.stored_ids()) | {destination.node_id}
        remaining = [uid for uid in warm.dataset.user_ids if uid not in stored][:10]
        returned, kept = warm.eager.process_at_destination(
            destination, query, remaining, warm.network, cycle=1
        )
        assert sorted(returned + kept) == sorted(remaining)
        assert len(kept) == int((1 - warm.eager.alpha) * len(remaining))

    def test_stored_profiles_are_removed_and_contributed(self, warm):
        querier = warm.dataset.user_ids[0]
        query = _query_for(warm, querier)
        node = warm.node(querier)
        session = node.issue_query(query)
        destination_id = next(
            (uid for uid in session.remaining if warm.network.is_online(uid)), None
        )
        if destination_id is None:
            pytest.skip("no remaining neighbour")
        destination = warm.node(destination_id)
        returned, kept = warm.eager.process_at_destination(
            destination, query, list(session.remaining), warm.network, cycle=1
        )
        # The destination's own profile was in the remaining list and must
        # have been removed (she contributes it herself).
        assert destination_id not in returned + kept
        assert destination_id in destination.contributed_profiles(query.query_id)

    def test_duplicate_gossip_does_not_recontribute(self, warm):
        querier = warm.dataset.user_ids[0]
        query = _query_for(warm, querier)
        node = warm.node(querier)
        session = node.issue_query(query)
        destination_id = next(
            (uid for uid in session.remaining if warm.network.is_online(uid)), None
        )
        if destination_id is None:
            pytest.skip("no remaining neighbour")
        destination = warm.node(destination_id)
        remaining = list(session.remaining)
        warm.eager.process_at_destination(destination, query, remaining, warm.network, cycle=1)
        partials_before = warm.stats.total_messages(KIND_PARTIAL_RESULT)
        warm.eager.process_at_destination(destination, query, remaining, warm.network, cycle=2)
        partials_after = warm.stats.total_messages(KIND_PARTIAL_RESULT)
        # Second delivery of the same list: the already-contributed profiles
        # are dropped silently; at most a smaller, disjoint partial result is
        # produced (never the same profiles again).
        assert destination.contributed_profiles(query.query_id) >= {destination_id}
        assert partials_after - partials_before <= 1


class TestTrafficAccounting:
    def test_query_traffic_is_attributed_to_the_query(self, warm, query_workload):
        query = query_workload[0]
        warm.issue_queries([query])
        warm.run_eager(cycles=10)
        per_kind = warm.stats.query_bytes(query.query_id)
        assert per_kind.get(KIND_REMAINING_FORWARD, 0) > 0
        assert per_kind.get(KIND_PARTIAL_RESULT, 0) > 0
        assert per_kind.get(KIND_REMAINING_RETURN, 0) >= 0

    def test_partial_result_messages_bounded_by_theorem(self, warm, query_workload):
        """Theorem 2.3: the number of partial result messages for one query
        is bounded by 2^R - 1 with R the drain time; a generous concrete
        bound is the number of users reached."""
        query = query_workload[0]
        warm.issue_queries([query])
        warm.run_eager(cycles=20)
        messages = warm.stats.query_messages(query.query_id).get(KIND_PARTIAL_RESULT, 0)
        reached = len(warm.users_reached(query.query_id))
        assert messages <= reached

    def test_maintain_networks_flag_controls_digest_exchange(self, synthetic_dataset):
        config = P3QConfig(
            network_size=20,
            storage=5,
            random_view_size=5,
            digest_bits=2_048,
            digest_hashes=5,
            seed=5,
            eager_maintains_networks=False,
        )
        simulation = P3QSimulation(synthetic_dataset.copy(), config)
        simulation.warm_start()
        query = _query_for(simulation, synthetic_dataset.user_ids[0])
        simulation.issue_queries([query])
        simulation.run_eager(cycles=10)
        from repro.simulator.stats import KIND_DIGESTS

        assert simulation.stats.total_bytes(KIND_DIGESTS) == 0
