"""Integration tests for P3QNode, the eager protocol and P3QSimulation."""

from __future__ import annotations

import pytest

from repro.baselines.centralized import CentralizedTopK
from repro.data.dynamics import DynamicsConfig, ProfileDynamicsGenerator, massive_departure
from repro.data.queries import Query
from repro.metrics.recall import average_recall
from repro.p3q.config import P3QConfig
from repro.p3q.protocol import P3QSimulation
from repro.similarity.knn import IdealNetworkIndex


class TestNodeBasics:
    def test_node_serves_own_and_stored_profiles(self, warm_simulation):
        node = warm_simulation.node(warm_simulation.dataset.user_ids[0])
        own = node.full_profile_of(node.node_id)
        assert own is not None and own.actions == node.profile.actions
        stored = node.personal_network.stored_ids()
        if stored:
            assert node.full_profile_of(stored[0]) is not None
        assert node.full_profile_of(-12345) is None

    def test_stored_digest_sample_includes_own_digest(self, warm_simulation):
        node = warm_simulation.node(warm_simulation.dataset.user_ids[0])
        sample = node.stored_digest_sample(limit=3)
        assert any(d.user_id == node.node_id for d in sample)
        assert len(sample) <= 3 + 1

    def test_issue_query_rejects_foreign_querier(self, warm_simulation):
        ids = warm_simulation.dataset.user_ids
        node = warm_simulation.node(ids[0])
        query = Query(query_id=1, querier=ids[1], tags=(1,))
        with pytest.raises(ValueError):
            node.issue_query(query)

    def test_issue_query_builds_remaining_list(self, warm_simulation, query_workload):
        query = query_workload[0]
        node = warm_simulation.node(query.querier)
        session = node.issue_query(query)
        assert set(session.remaining) == set(node.personal_network.unstored_ids())
        assert node.has_active_queries() or not session.remaining


class TestWarmStart:
    def test_warm_start_installs_ideal_networks(self, synthetic_dataset, small_config):
        simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
        ideal = simulation.warm_start()
        for uid in synthetic_dataset.user_ids[:10]:
            node = simulation.node(uid)
            assert set(node.personal_network.member_ids()) == set(ideal.neighbour_ids(uid))
            stored = node.personal_network.stored_ids()
            assert len(stored) <= small_config.storage_for(uid)
            # Stored replicas are the highest-scored neighbours.
            assert set(stored) <= set(ideal.top_c_ids(uid, small_config.storage_for(uid)))

    def test_bootstrap_fills_random_views(self, synthetic_dataset, small_config):
        simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
        simulation.bootstrap_random_views()
        sizes = [len(simulation.node(uid).random_view) for uid in synthetic_dataset.user_ids]
        assert all(size > 0 for size in sizes)
        assert all(size <= small_config.random_view_size for size in sizes)


class TestEagerProcessing:
    def test_recall_reaches_one_on_converged_networks(self, warm_simulation, query_workload):
        central = CentralizedTopK(
            warm_simulation.dataset,
            network_size=warm_simulation.config.network_size,
        )
        references = central.relevant_items(query_workload, k=10)
        sessions = warm_simulation.issue_queries(query_workload)
        warm_simulation.run_eager(cycles=30)
        results = {qid: s.snapshots[-1].items for qid, s in sessions.items()}
        assert average_recall(results, references) == pytest.approx(1.0)
        assert all(session.is_complete() for session in sessions.values())

    def test_recall_never_decreases_to_completion(self, warm_simulation, query_workload):
        central = CentralizedTopK(
            warm_simulation.dataset, network_size=warm_simulation.config.network_size
        )
        references = central.relevant_items(query_workload, k=10)
        sessions = warm_simulation.issue_queries(query_workload)
        per_cycle = []

        def callback(cycle, snapshots):
            results = {qid: snap.items for qid, snap in snapshots.items()}
            per_cycle.append(average_recall(results, references))

        warm_simulation.run_eager(cycles=30, callback=callback)
        assert per_cycle[-1] == pytest.approx(1.0)
        # Recall may wobble slightly mid-run (NRA approximations) but the
        # overall trend must be upward: the final value dominates the first.
        assert per_cycle[-1] >= per_cycle[0]

    def test_every_contributor_is_a_network_member_or_querier(
        self, warm_simulation, query_workload
    ):
        sessions = warm_simulation.issue_queries(query_workload)
        warm_simulation.run_eager(cycles=30)
        for session in sessions.values():
            allowed = set(session.expected_profiles)
            assert session.profiles_used <= allowed

    def test_eager_stops_when_idle(self, warm_simulation, query_workload):
        warm_simulation.issue_queries(query_workload)
        executed = warm_simulation.run_eager(cycles=200)
        assert executed < 200

    def test_users_reached_includes_querier(self, warm_simulation, query_workload):
        sessions = warm_simulation.issue_queries(query_workload)
        warm_simulation.run_eager(cycles=20)
        for query in query_workload:
            reached = warm_simulation.users_reached(query.query_id)
            assert query.querier in reached
            assert len(reached) >= 1

    def test_alpha_zero_and_one_still_complete(self, synthetic_dataset, query_workload):
        for alpha in (0.0, 1.0):
            config = P3QConfig(
                network_size=20,
                storage=5,
                random_view_size=5,
                alpha=alpha,
                digest_bits=2_048,
                digest_hashes=5,
                seed=4,
            )
            simulation = P3QSimulation(synthetic_dataset.copy(), config)
            simulation.warm_start()
            sessions = simulation.issue_queries(query_workload[:4])
            simulation.run_eager(cycles=60)
            assert all(s.is_complete() for s in sessions.values())

    def test_offline_querier_is_skipped(self, warm_simulation, query_workload):
        query = query_workload[0]
        warm_simulation.depart_users([query.querier])
        sessions = warm_simulation.issue_queries([query])
        assert query.query_id not in sessions


class TestDynamics:
    def test_profile_changes_propagate_through_lazy_gossip(self, warm_simulation):
        dataset = warm_simulation.dataset
        generator = ProfileDynamicsGenerator(
            dataset, DynamicsConfig(change_fraction=0.3, mean_new_actions=5, seed=2)
        )
        change_day = generator.generate_day()
        warm_simulation.apply_profile_changes(change_day)
        changed = set(change_day.changed_users)

        from repro.metrics.freshness import average_update_rate

        before = average_update_rate(
            warm_simulation.stored_replica_versions(),
            warm_simulation.current_profile_versions(),
            changed,
        )
        warm_simulation.run_lazy(15)
        after = average_update_rate(
            warm_simulation.stored_replica_versions(),
            warm_simulation.current_profile_versions(),
            changed,
        )
        assert after >= before
        assert after > 0.5

    def test_churn_degrades_but_does_not_break_queries(
        self, synthetic_dataset, small_config, query_workload
    ):
        central = CentralizedTopK(synthetic_dataset, network_size=small_config.network_size)
        references = central.relevant_items(query_workload, k=10)
        queriers = [q.querier for q in query_workload]

        def run(departure_fraction):
            simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
            simulation.warm_start()
            if departure_fraction:
                event = massive_departure(
                    simulation.dataset, departure_fraction, seed=1, protect=queriers
                )
                simulation.depart_users(event.departing_users)
            sessions = simulation.issue_queries(query_workload)
            simulation.run_eager(cycles=15, stop_when_idle=False)
            return {qid: s.snapshots[-1].items for qid, s in sessions.items()}

        healthy = average_recall(run(0.0), references)
        churned = average_recall(run(0.7), references)
        assert healthy == pytest.approx(1.0)
        assert churned <= healthy
        assert churned >= 0.3  # replicas keep most of the answer available

    def test_lazy_convergence_from_cold_start(self, synthetic_dataset, small_config):
        simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
        simulation.bootstrap_random_views()
        ideal = IdealNetworkIndex(synthetic_dataset, size=small_config.network_size)
        from repro.metrics.convergence import average_success_ratio

        start = average_success_ratio(ideal, simulation.discovered_networks())
        simulation.run_lazy(12)
        end = average_success_ratio(ideal, simulation.discovered_networks())
        assert end > start
        assert end > 0.6
