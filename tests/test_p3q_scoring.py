"""Tests for the query relevance scoring functions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.models import UserProfile
from repro.data.queries import Query
from repro.p3q.scoring import (
    item_score_for_user,
    partial_scores,
    ranked_items,
    relevance_scores,
    user_score_map,
)


@pytest.fixture()
def query() -> Query:
    return Query(query_id=0, querier=0, tags=(1, 2, 3))


class TestPerUserScore:
    def test_counts_matching_query_tags(self, query):
        profile = UserProfile(1, [(10, 1), (10, 2), (10, 9), (20, 3)])
        assert item_score_for_user(profile, query, 10) == 2
        assert item_score_for_user(profile, query, 20) == 1
        assert item_score_for_user(profile, query, 99) == 0

    def test_user_score_map_keeps_positive_only(self, query):
        profile = UserProfile(1, [(10, 1), (20, 9), (30, 2), (30, 3)])
        scores = user_score_map(profile, query)
        assert scores == {10: 1, 30: 2}

    def test_score_bounded_by_query_length(self, query):
        profile = UserProfile(1, [(10, 1), (10, 2), (10, 3), (10, 4)])
        assert item_score_for_user(profile, query, 10) == len(query)


class TestAggregation:
    def test_partial_scores_sum_over_profiles(self, query):
        a = UserProfile(1, [(10, 1), (20, 2)])
        b = UserProfile(2, [(10, 2), (10, 3)])
        scores = partial_scores([a, b], query)
        assert scores == {10: 3.0, 20: 1.0}

    def test_relevance_scores_is_partial_over_all_profiles(self, query):
        profiles = {
            1: UserProfile(1, [(10, 1)]),
            2: UserProfile(2, [(10, 2), (30, 3)]),
        }
        assert relevance_scores(profiles, query) == {10: 2.0, 30: 1.0}

    def test_partial_scores_empty_for_unrelated_profiles(self, query):
        profile = UserProfile(1, [(10, 99), (20, 98)])
        assert partial_scores([profile], query) == {}

    def test_ranked_items_orders_and_truncates(self):
        scores = {1: 3.0, 2: 5.0, 3: 3.0}
        assert list(ranked_items(scores, 2)) == [2, 1]

    @given(
        st.lists(
            st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=20),
            min_size=1,
            max_size=5,
        ),
        st.sets(st.integers(0, 10), min_size=1, max_size=4),
    )
    @settings(max_examples=50)
    def test_partial_scores_decompose_additively(self, profile_actions, tags):
        """partial_scores over a union of profiles equals the sum of
        partial_scores over any partition of them -- the property that makes
        P3Q's distributed partial results correct."""
        query = Query(query_id=0, querier=0, tags=tuple(sorted(tags)))
        profiles = [UserProfile(i, actions) for i, actions in enumerate(profile_actions)]
        whole = partial_scores(profiles, query)
        first, second = profiles[: len(profiles) // 2], profiles[len(profiles) // 2:]
        merged = {}
        for part in (partial_scores(first, query), partial_scores(second, query)):
            for item, score in part.items():
                merged[item] = merged.get(item, 0.0) + score
        assert merged == whole
