"""Schema tests for the perf harness report (``benchmarks.perf``).

These pin the v5 report contract: everything v4 required -- macro entries
report ``setup_seconds`` separately from the timed cycle loops, declare how
the eager phase was warmed, carry the per-repeat rate samples behind
the headline rate together with the statistic that produced it, name the
engine executor that actually ran (``inline``/``fork``/``pool``) with its
pool-reuse count, and the ``columnar`` / ``worker_scaling`` sections carry
positive throughput rates -- plus the ``serving`` section: per
``workload@concurrency`` cell, positive QPS, non-decreasing latency
percentiles, a positive completed count, coverage-at-cutoff in [0, 1],
and an optional positive peak-RSS byte count.  ``compare_reports`` guards
serving QPS and p95 latency when both reports carry the section.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf import (  # noqa: E402
    SCHEMA_VERSION,
    bench_macro,
    bench_scale_smoke,
    compare_reports,
    validate_report,
)


def _valid_report() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": False,
        "digest": {
            "membership_ops_per_sec": 1e6,
            "membership_speedup": 5.0,
            "build_per_sec": 1e4,
        },
        "similarity": {"overlap_pairs_per_sec": 1e6, "overlap_speedup": 8.0},
        "macro": {
            "100": {
                "num_nodes": 100,
                "lazy_cycles_per_sec": 20.0,
                "lazy_rate_samples": [19.0, 20.0, 21.0],
                "eager_cycles_per_sec": 90.0,
                "eager_rate_samples": [88.0, 90.0, 92.0],
                "rate_stat": "median",
                "setup_seconds": 0.5,
                "eager_warm": "ideal",
                "engine_executor": "inline",
                "pool_reuse_count": 0,
            },
            "10000": {
                "num_nodes": 10000,
                "lazy_cycles_per_sec": 0.2,
                "lazy_rate_samples": [0.19, 0.2, 0.21],
                "eager_cycles_per_sec": 2.0,
                "eager_rate_samples": [1.9, 2.0, 2.1],
                "rate_stat": "median",
                "setup_seconds": 12.0,
                "eager_warm": "lazy",
                "engine_executor": "pool",
                "pool_reuse_count": 6,
                "peak_rss_bytes": {"dataset": 100_000_000, "lazy": 150_000_000},
            },
        },
        "columnar": {
            "10000": {
                "build_rows_per_sec": 9e4,
                "object_build_rows_per_sec": 8e4,
                "build_speedup": 1.1,
                "probe_ops_per_sec": 1.2e6,
                "object_probe_ops_per_sec": 1.1e6,
                "probe_speedup": 1.05,
            }
        },
        "worker_scaling": {
            "10000": {
                "workers": 2,
                "engine_executor": "pool",
                "serial_lazy_cycles_per_sec": 0.2,
                "sharded_lazy_cycles_per_sec": 0.3,
                "speedup": 1.5,
                "pool_reuse_count": 2,
            }
        },
        "serving": {
            "num_nodes": 300,
            "num_queries": 48,
            "network_size": 50,
            "seed": 17,
            "workloads": {
                "hot-topic@c4": _serving_cell("hot-topic", 4),
                "long-tail@c16": _serving_cell("long-tail", 16),
            },
        },
        "service": {
            "seed": 23,
            "frame_batch": 120,
            "codec": {
                "messages": {
                    "DigestAdvertisement": {
                        "json_fps": 3000.0,
                        "binary_fps": 42000.0,
                        "speedup": 14.0,
                    },
                    "QueryForward": {
                        "json_fps": 40000.0,
                        "binary_fps": 45000.0,
                        "speedup": 1.1,
                    },
                },
                "digest_roundtrip_speedup": 14.0,
            },
            "demo": {
                "50": _service_demo_cell(50),
                "200": _service_demo_cell(200),
            },
        },
    }


def _service_demo_cell(num_users: int) -> dict:
    return {
        "num_users": num_users,
        "num_queries": 8,
        "completed": 8,
        "codec": "binary",
        "gossip_rounds": 400,
        "rounds_per_sec": 500.0,
        "rpc_count": 900,
        "rpc_p95_ms": 3.0,
        "wall_seconds": 0.8,
        "bytes_total": 1_000_000,
        "invariant_error": None,
    }


def _serving_cell(workload: str, concurrency: int) -> dict:
    return {
        "workload": workload,
        "concurrency": concurrency,
        "arrivals_per_cycle": max(1, concurrency // 2),
        "num_queries": 48,
        "completed": 48,
        "abandoned": 0,
        "rejected": 0,
        "cycles": 18,
        "qps_cycle": 2.5,
        "qps_wall": 120.0,
        "latency_p50": 6.0,
        "latency_p95": 6.0,
        "latency_p99": 7.0,
        "coverage_cutoff": 0.9,
        "coverage_at_cutoff": 1.0,
        "messages": 40_000,
        "messages_per_cycle": 2_222.2,
        "change_days_applied": 0,
        "wall_seconds": 0.4,
        "cpu_seconds": 0.4,
        "peak_rss_bytes": 70_000_000,
    }


class TestValidateReportV3:
    def test_valid_report_passes(self):
        assert validate_report(_valid_report()) == []

    def test_schema_version_is_6(self):
        assert SCHEMA_VERSION == 6

    def test_missing_rate_stat_rejected(self):
        report = _valid_report()
        del report["macro"]["100"]["rate_stat"]
        assert any("rate_stat" in p for p in validate_report(report))

    def test_missing_rate_samples_rejected(self):
        report = _valid_report()
        report["macro"]["100"]["lazy_rate_samples"] = []
        assert any("lazy_rate_samples" in p for p in validate_report(report))

    def test_old_schema_version_rejected(self):
        report = _valid_report()
        report["schema_version"] = 1
        assert any("schema_version" in p for p in validate_report(report))

    def test_missing_setup_seconds_rejected(self):
        report = _valid_report()
        del report["macro"]["100"]["setup_seconds"]
        problems = validate_report(report)
        assert any("setup_seconds" in p for p in problems)

    def test_negative_setup_seconds_rejected(self):
        report = _valid_report()
        report["macro"]["100"]["setup_seconds"] = -1.0
        assert any("setup_seconds" in p for p in validate_report(report))

    def test_unknown_eager_warm_rejected(self):
        report = _valid_report()
        report["macro"]["100"]["eager_warm"] = "cold"
        assert any("eager_warm" in p for p in validate_report(report))

    def test_missing_cycle_rates_still_rejected(self):
        report = _valid_report()
        report["macro"]["100"]["lazy_cycles_per_sec"] = 0
        assert any("lazy_cycles_per_sec" in p for p in validate_report(report))


class TestValidateReportV4:
    """The executor dimension: every macro entry says what actually ran."""

    def test_missing_engine_executor_rejected(self):
        report = _valid_report()
        del report["macro"]["100"]["engine_executor"]
        assert any("engine_executor" in p for p in validate_report(report))

    def test_unknown_engine_executor_rejected(self):
        report = _valid_report()
        report["macro"]["100"]["engine_executor"] = "threads"
        assert any("engine_executor" in p for p in validate_report(report))

    def test_missing_pool_reuse_count_rejected(self):
        report = _valid_report()
        del report["macro"]["100"]["pool_reuse_count"]
        assert any("pool_reuse_count" in p for p in validate_report(report))

    def test_negative_pool_reuse_count_rejected(self):
        report = _valid_report()
        report["macro"]["10000"]["pool_reuse_count"] = -1
        assert any("pool_reuse_count" in p for p in validate_report(report))

    def test_peak_rss_is_optional(self):
        report = _valid_report()
        del report["macro"]["10000"]["peak_rss_bytes"]
        assert validate_report(report) == []

    def test_malformed_peak_rss_rejected(self):
        report = _valid_report()
        report["macro"]["10000"]["peak_rss_bytes"] = {"lazy": -5}
        assert any("peak_rss_bytes" in p for p in validate_report(report))
        report["macro"]["10000"]["peak_rss_bytes"] = "big"
        assert any("peak_rss_bytes" in p for p in validate_report(report))

    def test_columnar_section_is_optional_but_validated(self):
        report = _valid_report()
        del report["columnar"]
        assert validate_report(report) == []
        report = _valid_report()
        report["columnar"]["10000"]["probe_ops_per_sec"] = 0
        assert any("probe_ops_per_sec" in p for p in validate_report(report))
        report = _valid_report()
        report["columnar"] = {}
        assert any("columnar" in p for p in validate_report(report))

    def test_worker_scaling_section_is_optional_but_validated(self):
        report = _valid_report()
        del report["worker_scaling"]
        assert validate_report(report) == []
        report = _valid_report()
        report["worker_scaling"]["10000"]["speedup"] = 0
        assert any("speedup" in p for p in validate_report(report))
        report = _valid_report()
        report["worker_scaling"]["10000"]["engine_executor"] = "magic"
        assert any("worker_scaling" in p and "engine_executor" in p
                   for p in validate_report(report))

    def test_quick_suite_produces_a_valid_report(self):
        from benchmarks.perf import run_suite

        report = run_suite(quick=True)
        assert report["schema_version"] == SCHEMA_VERSION
        assert validate_report(report) == []
        assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1
        for entry in report["macro"].values():
            assert entry["engine_executor"] in ("inline", "fork", "pool")
            assert entry["pool_reuse_count"] >= 0
        assert report["columnar"]  # quick runs include the micro-benchmark
        assert report["serving"]["workloads"]  # ...and the serving sweep
        assert report["service"]["codec"]["messages"]  # ...and the service bench


class TestValidateReportV5:
    """The serving section: QPS, latency percentiles and coverage per cell."""

    def test_serving_section_is_optional(self):
        report = _valid_report()
        del report["serving"]
        assert validate_report(report) == []

    def test_empty_workloads_rejected(self):
        report = _valid_report()
        report["serving"]["workloads"] = {}
        assert any("serving.workloads" in p for p in validate_report(report))

    def test_nonpositive_qps_rejected(self):
        for key in ("qps_cycle", "qps_wall"):
            report = _valid_report()
            report["serving"]["workloads"]["hot-topic@c4"][key] = 0
            assert any(key in p for p in validate_report(report))

    def test_decreasing_percentiles_rejected(self):
        report = _valid_report()
        cell = report["serving"]["workloads"]["hot-topic@c4"]
        cell["latency_p95"] = 10.0  # above p99 (7.0)
        assert any("non-decreasing" in p for p in validate_report(report))

    def test_zero_completed_rejected(self):
        report = _valid_report()
        report["serving"]["workloads"]["hot-topic@c4"]["completed"] = 0
        assert any("completed" in p for p in validate_report(report))

    def test_out_of_range_coverage_rejected(self):
        report = _valid_report()
        report["serving"]["workloads"]["hot-topic@c4"]["coverage_at_cutoff"] = 1.2
        assert any("coverage_at_cutoff" in p for p in validate_report(report))

    def test_malformed_peak_rss_rejected_but_absent_ok(self):
        report = _valid_report()
        report["serving"]["workloads"]["hot-topic@c4"]["peak_rss_bytes"] = -1
        assert any("peak_rss_bytes" in p for p in validate_report(report))
        report = _valid_report()
        del report["serving"]["workloads"]["hot-topic@c4"]["peak_rss_bytes"]
        assert validate_report(report) == []


class TestCompareServing:
    """The serving guard: QPS drops and p95 jumps fail the comparison."""

    def test_qps_wall_regression_detected(self):
        current, baseline = _valid_report(), _valid_report()
        current["serving"]["workloads"]["hot-topic@c4"]["qps_wall"] = 60.0  # was 120
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert any("serving[hot-topic@c4].qps_wall" in p for p in problems)

    def test_latency_p95_regression_detected(self):
        current, baseline = _valid_report(), _valid_report()
        current["serving"]["workloads"]["long-tail@c16"]["latency_p95"] = 9.0
        current["serving"]["workloads"]["long-tail@c16"]["latency_p99"] = 9.0
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert any("serving[long-tail@c16].latency_p95" in p for p in problems)

    def test_within_tolerance_passes(self):
        current, baseline = _valid_report(), _valid_report()
        current["serving"]["workloads"]["hot-topic@c4"]["qps_wall"] = 115.0
        assert compare_reports(current, baseline, max_regression=0.10) == []

    def test_serving_absent_in_baseline_compares_macro_only(self):
        # A v4 baseline predating the serving sweep: the guard must not
        # fire, and macro regressions must still be caught.
        current, baseline = _valid_report(), _valid_report()
        del baseline["serving"]
        assert compare_reports(current, baseline) == []
        current["macro"]["100"]["lazy_cycles_per_sec"] = 10.0
        problems = compare_reports(current, baseline)
        assert any("macro[100].lazy_cycles_per_sec" in p for p in problems)


class TestValidateReportV6:
    """The service section: codec frames/sec and demo round throughput."""

    def test_service_section_is_optional(self):
        report = _valid_report()
        del report["service"]
        assert validate_report(report) == []

    def test_empty_codec_messages_rejected(self):
        report = _valid_report()
        report["service"]["codec"]["messages"] = {}
        assert any("service.codec.messages" in p for p in validate_report(report))

    def test_nonpositive_fps_rejected(self):
        for key in ("json_fps", "binary_fps", "speedup"):
            report = _valid_report()
            report["service"]["codec"]["messages"]["QueryForward"][key] = 0
            assert any(key in p for p in validate_report(report))

    def test_nonpositive_digest_speedup_rejected(self):
        report = _valid_report()
        report["service"]["codec"]["digest_roundtrip_speedup"] = -1
        assert any("digest_roundtrip_speedup" in p for p in validate_report(report))

    def test_demo_without_completed_queries_rejected(self):
        report = _valid_report()
        report["service"]["demo"]["50"]["completed"] = 0
        assert any("completed" in p for p in validate_report(report))

    def test_demo_invariant_violation_rejected(self):
        report = _valid_report()
        report["service"]["demo"]["50"]["invariant_error"] = "bytes drifted"
        assert any("invariant" in p for p in validate_report(report))

    def test_nonpositive_rounds_per_sec_rejected(self):
        report = _valid_report()
        report["service"]["demo"]["200"]["rounds_per_sec"] = 0
        assert any("rounds_per_sec" in p for p in validate_report(report))


class TestCompareService:
    """The service guard: demo throughput drops and rpc p95 jumps fail."""

    def test_rounds_per_sec_regression_detected(self):
        current, baseline = _valid_report(), _valid_report()
        current["service"]["demo"]["50"]["rounds_per_sec"] = 250.0  # was 500
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert any("service[50].rounds_per_sec" in p for p in problems)

    def test_rpc_p95_regression_detected(self):
        current, baseline = _valid_report(), _valid_report()
        current["service"]["demo"]["200"]["rpc_p95_ms"] = 6.0  # was 3.0
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert any("service[200].rpc_p95_ms" in p for p in problems)

    def test_within_tolerance_passes(self):
        current, baseline = _valid_report(), _valid_report()
        current["service"]["demo"]["50"]["rounds_per_sec"] = 480.0
        assert compare_reports(current, baseline, max_regression=0.10) == []

    def test_service_absent_in_baseline_compares_without_guard(self):
        # A v5 baseline predating the service bench: the guard must not
        # fire, and macro regressions must still be caught.
        current, baseline = _valid_report(), _valid_report()
        del baseline["service"]
        assert compare_reports(current, baseline) == []
        current["macro"]["100"]["lazy_cycles_per_sec"] = 10.0
        problems = compare_reports(current, baseline)
        assert any("macro[100].lazy_cycles_per_sec" in p for p in problems)


class TestRequireExecutor:
    """CI guard: requested parallelism must not silently degrade to inline."""

    def test_suite_path_fails_fast_on_degradation(self):
        from benchmarks.perf.harness import main

        # Explicit inline can never satisfy a 'fork' requirement, on any
        # runner -- the check fires before the suite runs.
        assert main(["--workers", "2", "--executor", "inline",
                     "--require-executor", "fork"]) == 2

    def test_scale_smoke_reports_resolved_executor_and_fails(self, capsys):
        from benchmarks.perf.harness import main

        code = main([
            "--scale-smoke", "30", "--workers", "2",
            "--executor", "inline", "--require-executor", "pool",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "executor requirement FAILED" in captured.err
        assert "resolved to 'inline'" in captured.err

    def test_satisfied_requirement_passes(self, tmp_path):
        from benchmarks.perf.harness import main

        fragment = tmp_path / "fragment.json"
        code = main([
            "--scale-smoke", "30", "--workers", "1",
            "--require-executor", "inline",
            "--fragment-output", str(fragment),
        ])
        assert code == 0
        payload = json.loads(fragment.read_text(encoding="utf-8"))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["scale_smoke"]["num_nodes"] == 30
        assert payload["scale_smoke"]["engine_executor"] == "inline"


class TestMacroSetupSplit:
    """The timing fix: setup must not leak into cycles/sec."""

    @pytest.fixture(scope="class")
    def entry(self):
        macro = bench_macro(
            sizes=(30,), lazy_cycles=2, num_queries=3, repeats=1, profile_phases=True
        )
        return macro["30"]

    def test_setup_reported_separately(self, entry):
        assert entry["setup_seconds"] >= 0
        assert entry["lazy_cycles_per_sec"] > 0
        assert entry["eager_cycles_per_sec"] > 0

    def test_phase_breakdown_present_with_profile(self, entry):
        phases = entry["phases"]
        for key in (
            "dataset_seconds",
            "build_seconds",
            "bootstrap_seconds",
            "warm_seconds",
            "lazy_seconds",
            "eager_seconds",
        ):
            assert phases[key] >= 0
        # Setup is exactly the non-cycle phases: the timed lazy/eager loops
        # must not be part of it.
        expected = (
            phases["dataset_seconds"]
            + phases["build_seconds"]
            + phases["bootstrap_seconds"]
            + phases["warm_seconds"]
        )
        assert entry["setup_seconds"] == pytest.approx(expected, abs=1e-3)

    def test_small_sizes_use_ideal_warm(self, entry):
        assert entry["eager_warm"] == "ideal"

    def test_large_sizes_use_lazy_warm(self):
        from benchmarks.perf.harness import LAZY_WARM_THRESHOLD

        assert LAZY_WARM_THRESHOLD <= 5000  # the scale sizes must qualify


class TestScaleSmoke:
    def test_smoke_runs_and_reports(self):
        result = bench_scale_smoke(size=40, budget_seconds=60.0, num_queries=2)
        assert result["num_nodes"] == 40
        assert result["within_budget"] is True
        for key in (
            "setup_seconds",
            "lazy_cycle_seconds",
            "eager_cycle_seconds",
            "cycle_seconds",
        ):
            assert result[key] >= 0

    def test_budget_violation_detected(self):
        result = bench_scale_smoke(size=40, budget_seconds=1e-9, num_queries=2)
        assert result["within_budget"] is False

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            bench_scale_smoke(size=0)
        with pytest.raises(ValueError):
            bench_scale_smoke(size=10, budget_seconds=0)


class TestMedianOfThree:
    """The perf-guard flakiness fix: median-of-N headline plus spread."""

    def test_three_repeats_report_the_median(self):
        import statistics

        macro = bench_macro(sizes=(30,), lazy_cycles=1, num_queries=2, repeats=3)
        entry = macro["30"]
        assert entry["rate_stat"] == "median"
        assert len(entry["lazy_rate_samples"]) == 3
        assert entry["lazy_cycles_per_sec"] == pytest.approx(
            statistics.median(entry["lazy_rate_samples"])
        )

    def test_two_repeats_keep_best(self):
        macro = bench_macro(sizes=(30,), lazy_cycles=1, num_queries=2, repeats=2)
        entry = macro["30"]
        assert entry["rate_stat"] == "best"
        assert entry["lazy_cycles_per_sec"] == pytest.approx(
            max(entry["lazy_rate_samples"])
        )

    def test_compare_failure_message_reports_spread(self):
        current, baseline = _valid_report(), _valid_report()
        current["macro"]["100"]["lazy_cycles_per_sec"] = 10.0
        current["macro"]["100"]["lazy_rate_samples"] = [9.0, 10.0, 11.0]
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert problems
        message = next(p for p in problems if "macro[100].lazy_cycles_per_sec" in p)
        assert "spread 9.00..11.00" in message
        # The baseline's spread rides along too.
        assert "old median-of-3 spread 19.00..21.00" in message


class TestCompareReports:
    def test_regression_detected_on_shared_sizes(self):
        current, baseline = _valid_report(), _valid_report()
        current["macro"]["100"]["lazy_cycles_per_sec"] = 10.0  # was 20
        problems = compare_reports(current, baseline, max_regression=0.10)
        assert any("macro[100].lazy_cycles_per_sec" in p for p in problems)

    def test_n1000_style_extra_sizes_compare_when_shared(self):
        current, baseline = _valid_report(), _valid_report()
        current["macro"]["10000"]["eager_cycles_per_sec"] = 0.5  # was 2.0
        problems = compare_reports(current, baseline)
        assert any("macro[10000].eager_cycles_per_sec" in p for p in problems)

    def test_quick_full_mismatch_rejected(self):
        current, baseline = _valid_report(), _valid_report()
        current["quick"] = True
        assert compare_reports(current, baseline) == [
            "cannot compare a quick report against a full one"
        ]
