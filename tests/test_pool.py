"""Persistent shard worker pool: bit-identity, reuse, loud failure.

The pool executor (see ``repro/simulator/pool.py``) replaces fork-per-cycle
with long-lived workers over shared columnar state.  Its contract is the
fork executor's, sharpened:

* **bit-identity for any worker count** -- pool runs must match the serial
  engine fingerprint (and the transport golden) exactly, because installs
  are version-validated advisory cache entries;
* **the pool is actually reused** -- one fork at creation, then pure
  message passing (``barriers_served`` counts the reuse);
* **death is loud** -- a worker that dies mid-barrier raises
  :class:`ShardWorkerError` naming the shard and the cycle instead of
  hanging on the result queue.

The pool executor is forced in these tests so the real multi-process path
runs even on single-core CI machines (where ``auto`` would pick inline).
"""

from __future__ import annotations

import json

import pytest

from repro.data import ChangeDay, ProfileChange, SyntheticConfig, generate_dataset
from repro.p3q import P3QConfig, P3QSimulation
from repro.simulator import ShardedEngine, ShardWorkerError, contiguous_row_slabs
from repro.simulator.shard import EXECUTOR_POOL
from repro.simtest.runner import run_scenario as run_simtest_scenario
from repro.simtest.spec import ScenarioSpec

from test_transport_equivalence import GOLDEN_PATH, run_scenario as golden_scenario


def _simulation(workers: int = 1, executor: str = "auto") -> P3QSimulation:
    dataset = generate_dataset(
        SyntheticConfig(
            num_users=36,
            num_items=260,
            num_tags=80,
            num_communities=4,
            mean_actions_per_user=22,
            seed=11,
        )
    )
    config = P3QConfig(
        network_size=10,
        storage=4,
        seed=3,
        digest_bits=1_024,
        digest_hashes=4,
        workers=workers,
        engine_executor=executor,
    )
    sim = P3QSimulation(dataset, config)
    sim.bootstrap_random_views()
    return sim


def _fingerprint(sim: P3QSimulation):
    return (
        sorted(sim.stats.bytes_by_kind().items()),
        {uid: node.personal_network.member_ids() for uid, node in sorted(sim.nodes.items())},
        {uid: node.random_view.member_ids() for uid, node in sorted(sim.nodes.items())},
    )


# ------------------------------------------------------------- golden identity


class TestGoldenBitIdentity:
    def test_pool_engine_matches_the_transport_golden(self):
        """The strongest pin: persistent workers, golden-identical run."""
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert golden_scenario({"workers": 2, "engine_executor": "pool"}) == golden


# -------------------------------------------------------- worker invariance


class TestWorkerCountInvariance:
    def test_pool_fingerprints_match_serial_for_all_worker_counts(self):
        serial = _simulation()
        serial.run_lazy(4)
        reference = _fingerprint(serial)
        serial.close()
        for workers in (2, 4):
            sim = _simulation(workers=workers, executor="pool")
            sim.run_lazy(4)
            assert _fingerprint(sim) == reference, f"diverged at workers={workers}"
            sim.close()

    def test_pool_matches_serial_under_profile_dynamics(self):
        """Deltas path: profile changes between cycles reach the workers."""
        change = ChangeDay(
            day=1,
            changes=(
                ProfileChange(user_id=1, new_actions=((9_001, 3), (9_002, 4))),
                ProfileChange(user_id=7, new_actions=((9_003, 5),)),
            ),
        )

        def run(sim: P3QSimulation):
            sim.run_lazy(2)
            sim.apply_profile_changes(change)
            sim.run_lazy(3)
            fp = _fingerprint(sim)
            sim.close()
            return fp

        reference = run(_simulation())
        assert run(_simulation(workers=2, executor="pool")) == reference

    def test_simtest_twin_check_covers_the_pool_executor(self):
        spec = ScenarioSpec(
            workers=2, engine_executor="pool", lazy_cycles=3, eager_cycles=4
        )
        result = run_simtest_scenario(spec)
        assert result.ok, result.violation
        assert "worker-count-equivalence" in result.checked


# ------------------------------------------------------------------ pool reuse


class TestPoolReuse:
    def test_one_pool_serves_every_cycle(self):
        sim = _simulation(workers=2, executor="pool")
        engine = sim.engine
        assert isinstance(engine, ShardedEngine)
        assert engine.executor == EXECUTOR_POOL
        sim.run_lazy(4)
        pool = engine._pool
        assert pool is not None
        assert pool.alive()
        assert pool.barriers_served >= 4
        stats = engine.pricing_stats
        assert stats["pool_barriers"] == pool.barriers_served
        assert stats["pairs_predicted"] > 0
        assert stats["entries_installed"] > 0
        assert stats["worker_failures"] == 0
        pids = [process.pid for process in pool._processes]
        sim.run_lazy(2)
        # Still the same worker processes: no re-fork happened.
        assert engine._pool is pool
        assert [process.pid for process in pool._processes] == pids
        sim.close()
        assert not pool.alive()

    def test_close_is_idempotent(self):
        sim = _simulation(workers=2, executor="pool")
        sim.run_lazy(1)
        sim.close()
        sim.close()


# ---------------------------------------------------------------- loud failure


class TestWorkerDeath:
    def test_dead_worker_raises_naming_shard_and_cycle(self):
        sim = _simulation(workers=2, executor="pool")
        engine = sim.engine
        sim.run_lazy(1)
        pool = engine._pool
        assert pool is not None
        victim = pool._processes[1]
        victim.terminate()
        victim.join(timeout=5.0)
        with pytest.raises(ShardWorkerError) as excinfo:
            sim.run_lazy(1)
        message = str(excinfo.value)
        assert "shard 1" in message
        assert "cycle" in message
        sim.close()

    def test_direct_price_on_dead_pool_raises(self):
        from repro.data.columnar import ColumnarStore, DigestMatrix
        from repro.simulator.pool import PersistentShardPool

        store = ColumnarStore.from_action_stream([(0, [(1, 2)]), (1, [(3, 4)])])
        matrix = DigestMatrix(len(store), 256, 3, shared=True)
        matrix.build_rows(store)
        pool = PersistentShardPool(store, matrix, workers=2)
        try:
            entries = pool.price(0, [[(0, 1)], [(1, 0)]], [])
            assert len(entries) == 2
            pool._processes[0].terminate()
            pool._processes[0].join(timeout=5.0)
            with pytest.raises(ShardWorkerError, match="shard 0 .*cycle 7"):
                pool.price(7, [[(0, 1)], [(1, 0)]], [])
        finally:
            pool.close()
            matrix.close()

    def test_shard_count_mismatch_rejected(self):
        from repro.data.columnar import ColumnarStore, DigestMatrix
        from repro.simulator.pool import PersistentShardPool

        store = ColumnarStore.from_action_stream([(0, [(1, 2)])])
        matrix = DigestMatrix(len(store), 256, 3, shared=True)
        pool = PersistentShardPool(store, matrix, workers=2)
        try:
            with pytest.raises(ValueError):
                pool.price(0, [[]], [])
        finally:
            pool.close()
            matrix.close()


# ------------------------------------------------------------------- row slabs


class TestRowSlabs:
    def test_slabs_partition_the_row_range(self):
        slabs = contiguous_row_slabs(10, 3)
        assert [list(slab) for slab in slabs] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_workers_than_rows(self):
        slabs = contiguous_row_slabs(2, 4)
        assert [list(slab) for slab in slabs] == [[0], [1], [], []]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            contiguous_row_slabs(5, 0)


# ------------------------------------------------------------- parallel builds


class TestPoolDigestBuild:
    def test_pool_build_rows_writes_the_shared_matrix(self):
        from repro.data.columnar import ColumnarStore, DigestMatrix
        from repro.simulator.pool import PersistentShardPool, contiguous_row_slabs

        actions = [(uid, [(uid + 1, 2), (uid + 5, 3)]) for uid in range(8)]
        store = ColumnarStore.from_action_stream(actions)
        shared = DigestMatrix(len(store), 256, 3, shared=True)
        reference = DigestMatrix(len(store), 256, 3)
        reference.build_rows(store)
        pool = PersistentShardPool(store, shared, workers=2)
        try:
            built = pool.build_rows(contiguous_row_slabs(len(store), 2))
            assert built == len(store)
            for row in range(len(store)):
                assert shared.row_bytes_of(row) == reference.row_bytes_of(row)
                assert shared.row_version(row) == reference.row_version(row)
        finally:
            pool.close()
            shared.close()
