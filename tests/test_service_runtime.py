"""End-to-end tests of the asyncio service runtime.

A small in-process deployment must complete queries against the same
centralized references the experiments use, and the recorded wire trace
must pass the simtest invariant checkers -- the acceptance criteria of
service mode.  UDP coverage is a single smoke run over real loopback
sockets.
"""

from __future__ import annotations

import asyncio
import logging
from types import SimpleNamespace

import pytest

from repro.experiments.runner import converged_simulation
from repro.service import ServiceConfig, ServiceRuntime, ServiceTrace, check_trace
from repro.service.demo import (
    build_demo_workload,
    demo_succeeded,
    format_report,
    run_demo_sync,
)
from repro.service.runtime import _report_task_failure
from repro.simulator.effects import ProbeEffect, RequestEffect
from repro.simulator.transport import DROPPED, OP_REPLY, OP_REQUEST, Dispatch


def _run(workload, config, storage=3):
    """One full service run; returns (runtime, simulation, sessions)."""
    simulation = converged_simulation(workload, storage)

    async def go():
        runtime = ServiceRuntime(simulation, config)
        await runtime.start()
        try:
            sessions = await runtime.run_queries(workload.queries)
        finally:
            await runtime.stop()
        return runtime, sessions

    runtime, sessions = asyncio.run(go())
    return runtime, simulation, sessions


class TestInProcRun:
    @pytest.fixture(scope="class")
    def run(self):
        workload = build_demo_workload(num_users=30, num_queries=4, seed=7)
        config = ServiceConfig(
            gossip_interval=0.05, eager_interval=0.02, query_deadline=8.0
        )
        return _run(workload, config) + (workload,)

    def test_queries_complete(self, run):
        _, _, sessions, _ = run
        assert any(session.closed for session in sessions.values())

    def test_sessions_reach_coverage(self, run):
        _, _, sessions, _ = run
        for session in sessions.values():
            assert 0.0 <= session.coverage <= 1.0
        assert any(session.coverage == 1.0 for session in sessions.values())

    def test_trace_records_round_trips(self, run):
        runtime, _, _, _ = run
        ops = {event.op for event in runtime.trace.events}
        assert OP_REQUEST in ops
        assert OP_REPLY in ops

    def test_trace_passes_invariants(self, run):
        runtime, simulation, _, _ = run
        names = check_trace(runtime.trace.events, simulation)
        assert set(names) == {
            "byte-conservation",
            "view-bounds",
            "replica-freshness",
            "query-lifecycle",
        }

    def test_accounting_matches_trace(self, run):
        """Bytes in the stats collector come only from accounted wire events."""
        runtime, simulation, _, _ = run
        assert simulation.stats.total_bytes() > 0
        accounted = [e for e in runtime.trace.events if e.accounted]
        assert accounted

    def test_trace_dump_load_round_trip(self, run, tmp_path):
        runtime, _, _, _ = run
        path = tmp_path / "trace.jsonl"
        written = runtime.trace.dump(str(path))
        assert written == len(runtime.trace.events)
        loaded = ServiceTrace.load(str(path))
        assert len(loaded) == written
        for original, reloaded in zip(runtime.trace.events, loaded.events):
            assert original.op == reloaded.op
            assert original.sender == reloaded.sender
            assert original.receiver == reloaded.receiver
            assert original.status == reloaded.status
            assert original.accounted == reloaded.accounted
            assert original.query_id == reloaded.query_id
            assert type(original.message) is type(reloaded.message)


class TestUdpRun:
    def test_udp_smoke(self):
        workload = build_demo_workload(num_users=12, num_queries=2, seed=11)
        config = ServiceConfig(
            gossip_interval=0.05,
            eager_interval=0.02,
            query_deadline=8.0,
            wire="udp",
        )
        runtime, simulation, sessions = _run(workload, config)
        assert any(session.closed for session in sessions.values())
        check_trace(runtime.trace.events, simulation)


class TestDemo:
    def test_run_demo_sync_report(self, tmp_path):
        trace_path = tmp_path / "demo-trace.jsonl"
        report = run_demo_sync(
            num_users=20,
            num_queries=3,
            seed=5,
            deadline=8.0,
            trace_path=str(trace_path),
        )
        assert report["completed"] >= 1
        assert report["invariant_error"] is None
        assert demo_succeeded(report)
        assert report["bytes_total"] > 0
        assert trace_path.exists()
        text = format_report(report)
        assert "queries completed" in text
        assert "bytes on the wire" in text

    def test_demo_succeeded_requires_completion_and_clean_invariants(self):
        assert not demo_succeeded({"completed": 0, "invariant_error": None})
        assert not demo_succeeded({"completed": 3, "invariant_error": "boom"})
        assert demo_succeeded({"completed": 1, "invariant_error": None})


class TestServiceHardening:
    """Service-mode failure paths: concurrent mutation, bad frames, crashes."""

    def test_eager_round_survives_mid_round_insertions(self):
        """A query arriving while the eager round is suspended must not
        break the round's iteration (the round snapshots both dicts)."""
        workload = build_demo_workload(num_users=12, num_queries=4, seed=3)
        simulation = converged_simulation(workload, 3)
        # Pick a query whose local partials leave remote work outstanding.
        session = None
        for query in workload.queries:
            node = simulation.nodes[query.querier]
            session = node.issue_query(query)
            if session.remaining:
                break
            del node.sessions[query.query_id]
        assert session is not None and session.remaining, (
            "test needs a session with outstanding work"
        )

        gen = node.eager_round_effects(1)
        effect = gen.send(None)  # suspend mid-iteration, as the runtime does
        # A concurrent inbound QueryForward / issue_query lands meanwhile.
        node.sessions[10_001] = SimpleNamespace(remaining=[])
        node.forwarded[10_002] = SimpleNamespace(active=False)
        with pytest.raises(StopIteration):
            while True:
                if isinstance(effect, ProbeEffect):
                    effect = gen.send(False)
                elif isinstance(effect, RequestEffect):
                    effect = gen.send(Dispatch(DROPPED, None))
                else:
                    effect = gen.send(DROPPED)
        assert 10_001 in node.sessions
        assert 10_002 in node.forwarded

    def test_malformed_frame_is_dropped_not_fatal(self, caplog):
        workload = build_demo_workload(num_users=8, num_queries=1, seed=5)
        simulation = converged_simulation(workload, 3)
        config = ServiceConfig(gossip_interval=0.05, eager_interval=0.02)

        async def go():
            runtime = ServiceRuntime(simulation, config)
            await runtime.start()
            try:
                node_id = next(iter(runtime.services))
                assert runtime.wire.send(node_id, b"\xffnot-a-frame")
                await asyncio.sleep(0.05)
                assert not runtime.services[node_id]._inbox_task.done()
            finally:
                await runtime.stop()

        with caplog.at_level(logging.WARNING, logger="repro.service.runtime"):
            asyncio.run(go())
        assert "undecodable" in caplog.text

    def test_crashed_task_is_reported(self, caplog):
        async def boom():
            raise RuntimeError("kaboom")

        async def go():
            task = asyncio.create_task(boom(), name="boom-task")
            task.add_done_callback(_report_task_failure)
            await asyncio.gather(task, return_exceptions=True)
            await asyncio.sleep(0)  # let the done-callback run

        with caplog.at_level(logging.ERROR, logger="repro.service.runtime"):
            asyncio.run(go())
        assert "boom-task" in caplog.text
        assert "kaboom" in caplog.text


class TestServiceConfigValidation:
    def test_rejects_unknown_wire(self):
        with pytest.raises(ValueError, match="wire"):
            ServiceConfig(wire="tcp")

    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError, match="gossip_interval"):
            ServiceConfig(gossip_interval=0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            ServiceConfig(jitter=1.5)
