"""End-to-end tests of the asyncio service runtime.

A small in-process deployment must complete queries against the same
centralized references the experiments use, and the recorded wire trace
must pass the simtest invariant checkers -- the acceptance criteria of
service mode.  UDP coverage is a single smoke run over real loopback
sockets.
"""

from __future__ import annotations

import asyncio
import logging
import math
import struct
from types import SimpleNamespace

import pytest

from repro.experiments.runner import converged_simulation
from repro.gossip.sizes import total_bytes
from repro.service import ServiceConfig, ServiceRuntime, ServiceTrace, check_trace
from repro.service.codec import MAX_DATAGRAM_BYTES
from repro.service.demo import (
    build_demo_workload,
    demo_succeeded,
    format_report,
    run_demo_sync,
)
from repro.service.runtime import FrameBatcher, TimerWheel, _report_task_failure
from repro.simulator.effects import ProbeEffect, RequestEffect
from repro.simulator.transport import DROPPED, OP_REPLY, OP_REQUEST, Dispatch


def _run(workload, config, storage=3):
    """One full service run; returns (runtime, simulation, sessions)."""
    simulation = converged_simulation(workload, storage)

    async def go():
        runtime = ServiceRuntime(simulation, config)
        await runtime.start()
        try:
            sessions = await runtime.run_queries(workload.queries)
        finally:
            await runtime.stop()
        return runtime, sessions

    runtime, sessions = asyncio.run(go())
    return runtime, simulation, sessions


class TestInProcRun:
    @pytest.fixture(scope="class")
    def run(self):
        workload = build_demo_workload(num_users=30, num_queries=4, seed=7)
        config = ServiceConfig(
            gossip_interval=0.05, eager_interval=0.02, query_deadline=8.0
        )
        return _run(workload, config) + (workload,)

    def test_queries_complete(self, run):
        _, _, sessions, _ = run
        assert any(session.closed for session in sessions.values())

    def test_sessions_reach_coverage(self, run):
        _, _, sessions, _ = run
        for session in sessions.values():
            assert 0.0 <= session.coverage <= 1.0
        assert any(session.coverage == 1.0 for session in sessions.values())

    def test_trace_records_round_trips(self, run):
        runtime, _, _, _ = run
        ops = {event.op for event in runtime.trace.events}
        assert OP_REQUEST in ops
        assert OP_REPLY in ops

    def test_trace_passes_invariants(self, run):
        runtime, simulation, _, _ = run
        names = check_trace(runtime.trace.events, simulation)
        assert set(names) == {
            "byte-conservation",
            "view-bounds",
            "replica-freshness",
            "query-lifecycle",
        }

    def test_accounting_matches_trace(self, run):
        """Bytes in the stats collector come only from accounted wire events."""
        runtime, simulation, _, _ = run
        assert simulation.stats.total_bytes() > 0
        accounted = [e for e in runtime.trace.events if e.accounted]
        assert accounted

    def test_trace_dump_load_round_trip(self, run, tmp_path):
        runtime, _, _, _ = run
        path = tmp_path / "trace.jsonl"
        written = runtime.trace.dump(str(path))
        assert written == len(runtime.trace.events)
        loaded = ServiceTrace.load(str(path))
        assert len(loaded) == written
        for original, reloaded in zip(runtime.trace.events, loaded.events):
            assert original.op == reloaded.op
            assert original.sender == reloaded.sender
            assert original.receiver == reloaded.receiver
            assert original.status == reloaded.status
            assert original.accounted == reloaded.accounted
            assert original.query_id == reloaded.query_id
            assert type(original.message) is type(reloaded.message)


class TestUdpRun:
    def test_udp_smoke(self):
        workload = build_demo_workload(num_users=12, num_queries=2, seed=11)
        config = ServiceConfig(
            gossip_interval=0.05,
            eager_interval=0.02,
            query_deadline=8.0,
            wire="udp",
        )
        runtime, simulation, sessions = _run(workload, config)
        assert any(session.closed for session in sessions.values())
        check_trace(runtime.trace.events, simulation)


class TestDemo:
    def test_run_demo_sync_report(self, tmp_path):
        trace_path = tmp_path / "demo-trace.jsonl"
        report = run_demo_sync(
            num_users=20,
            num_queries=3,
            seed=5,
            deadline=8.0,
            trace_path=str(trace_path),
        )
        assert report["completed"] >= 1
        assert report["invariant_error"] is None
        assert demo_succeeded(report)
        assert report["bytes_total"] > 0
        assert trace_path.exists()
        text = format_report(report)
        assert "queries completed" in text
        assert "bytes on the wire" in text

    def test_demo_succeeded_requires_completion_and_clean_invariants(self):
        assert not demo_succeeded({"completed": 0, "invariant_error": None})
        assert not demo_succeeded({"completed": 3, "invariant_error": "boom"})
        assert demo_succeeded({"completed": 1, "invariant_error": None})


class TestServiceHardening:
    """Service-mode failure paths: concurrent mutation, bad frames, crashes."""

    def test_eager_round_survives_mid_round_insertions(self):
        """A query arriving while the eager round is suspended must not
        break the round's iteration (the round snapshots both dicts)."""
        workload = build_demo_workload(num_users=12, num_queries=4, seed=3)
        simulation = converged_simulation(workload, 3)
        # Pick a query whose local partials leave remote work outstanding.
        session = None
        for query in workload.queries:
            node = simulation.nodes[query.querier]
            session = node.issue_query(query)
            if session.remaining:
                break
            del node.sessions[query.query_id]
        assert session is not None and session.remaining, (
            "test needs a session with outstanding work"
        )

        gen = node.eager_round_effects(1)
        effect = gen.send(None)  # suspend mid-iteration, as the runtime does
        # A concurrent inbound QueryForward / issue_query lands meanwhile.
        node.sessions[10_001] = SimpleNamespace(remaining=[])
        node.forwarded[10_002] = SimpleNamespace(active=False)
        with pytest.raises(StopIteration):
            while True:
                if isinstance(effect, ProbeEffect):
                    effect = gen.send(False)
                elif isinstance(effect, RequestEffect):
                    effect = gen.send(Dispatch(DROPPED, None))
                else:
                    effect = gen.send(DROPPED)
        assert 10_001 in node.sessions
        assert 10_002 in node.forwarded

    def test_malformed_frame_is_dropped_not_fatal(self, caplog):
        workload = build_demo_workload(num_users=8, num_queries=1, seed=5)
        simulation = converged_simulation(workload, 3)
        config = ServiceConfig(gossip_interval=0.05, eager_interval=0.02)

        async def go():
            runtime = ServiceRuntime(simulation, config)
            await runtime.start()
            try:
                node_id = next(iter(runtime.services))
                assert runtime.wire.send(node_id, b"\xffnot-a-frame")
                await asyncio.sleep(0.05)
                assert not runtime.services[node_id]._inbox_task.done()
            finally:
                await runtime.stop()

        with caplog.at_level(logging.WARNING, logger="repro.service.runtime"):
            asyncio.run(go())
        assert "undecodable" in caplog.text

    def test_crashed_task_is_reported(self, caplog):
        async def boom():
            raise RuntimeError("kaboom")

        async def go():
            task = asyncio.create_task(boom(), name="boom-task")
            task.add_done_callback(_report_task_failure)
            await asyncio.gather(task, return_exceptions=True)
            await asyncio.sleep(0)  # let the done-callback run

        with caplog.at_level(logging.ERROR, logger="repro.service.runtime"):
            asyncio.run(go())
        assert "boom-task" in caplog.text
        assert "kaboom" in caplog.text


class TestServiceConfigValidation:
    def test_rejects_unknown_wire(self):
        with pytest.raises(ValueError, match="wire"):
            ServiceConfig(wire="tcp")

    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError, match="gossip_interval"):
            ServiceConfig(gossip_interval=0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            ServiceConfig(jitter=1.5)

    def test_rejects_unknown_codec(self):
        with pytest.raises(ValueError, match="codec"):
            ServiceConfig(codec="protobuf")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_nonfinite_timings(self, bad):
        with pytest.raises(ValueError, match="rpc_timeout"):
            ServiceConfig(rpc_timeout=bad)
        with pytest.raises(ValueError, match="jitter"):
            ServiceConfig(jitter=bad)

    def test_rejects_non_numeric_timings(self):
        with pytest.raises(ValueError, match="eager_interval"):
            ServiceConfig(eager_interval="fast")

    def test_validate_is_callable_directly(self):
        ServiceConfig().validate()


# ------------------------------------------------------------- PR 10 paths


class _FakeWire:
    def __init__(self, peers=(1, 2)):
        self.writes = []
        self.peers = set(peers)

    def has_peer(self, receiver):
        return receiver in self.peers

    def send(self, receiver, frame):
        self.writes.append((receiver, frame))
        return True


class TestFrameBatcher:
    def test_coalesces_same_tick_frames_per_destination(self):
        async def go():
            wire = _FakeWire()
            batcher = FrameBatcher(wire)
            assert batcher.send(1, b"aa")
            assert batcher.send(1, b"bb")
            assert batcher.send(2, b"cc")
            assert wire.writes == []  # nothing written inside the tick
            await asyncio.sleep(0)  # call_soon flush
            assert (1, b"aabb") in wire.writes
            assert (2, b"cc") in wire.writes
            assert batcher.empty()

        asyncio.run(go())

    def test_send_now_flushes_first_preserving_order(self):
        async def go():
            wire = _FakeWire()
            batcher = FrameBatcher(wire)
            batcher.send(1, b"aa")
            assert batcher.send_now(1, b"rr")
            assert wire.writes == [(1, b"aa"), (1, b"rr")]

        asyncio.run(go())

    def test_unknown_peer_is_refused(self):
        async def go():
            wire = _FakeWire(peers=(1,))
            batcher = FrameBatcher(wire)
            assert not batcher.send(9, b"aa")
            assert not batcher.send_now(9, b"aa")
            assert wire.writes == []

        asyncio.run(go())

    def test_budget_overflow_flushes_eagerly(self):
        async def go():
            wire = _FakeWire()
            batcher = FrameBatcher(wire)
            nearly_full = b"x" * (MAX_DATAGRAM_BYTES - 10)
            batcher.send(1, nearly_full)
            batcher.send(1, b"y" * 20)
            # The first frame flushed to make room; the second waits its tick.
            assert wire.writes == [(1, nearly_full)]
            await asyncio.sleep(0)
            assert wire.writes[-1] == (1, b"y" * 20)

        asyncio.run(go())

    def test_oversized_frame_writes_through_in_caller_context(self):
        async def go():
            wire = _FakeWire()
            batcher = FrameBatcher(wire)
            big = b"z" * (MAX_DATAGRAM_BYTES + 1)
            batcher.send(1, b"aa")
            batcher.send(1, big)
            # Queued frames flush first (order), then the oversized frame
            # goes straight to the wire so its refusal raises at the caller.
            assert wire.writes == [(1, b"aa"), (1, big)]

        asyncio.run(go())


class TestTimerWheel:
    def test_fires_in_deadline_order(self):
        async def go():
            wheel = TimerWheel()
            wheel.start()
            fired = []
            done = asyncio.Event()
            wheel.schedule(0.03, lambda: fired.append("late"))
            wheel.schedule(0.01, lambda: (fired.append("early"), done.set()))
            await asyncio.wait_for(done.wait(), 2.0)
            await asyncio.sleep(0.05)
            await wheel.stop()
            assert fired == ["early", "late"]

        asyncio.run(go())

    def test_schedule_after_stop_is_noop(self):
        async def go():
            wheel = TimerWheel()
            wheel.start()
            await wheel.stop()
            wheel.schedule(0.0, lambda: pytest.fail("fired after stop"))
            assert len(wheel) == 0
            await asyncio.sleep(0.02)

        asyncio.run(go())

    def test_one_scheduler_task_replaces_per_node_timers(self):
        """Acceptance: task count is O(1)-per-node lower at steady state."""
        num_users = 12
        workload = build_demo_workload(num_users=num_users, num_queries=1, seed=3)
        simulation = converged_simulation(workload, 3)

        async def go():
            runtime = ServiceRuntime(simulation, ServiceConfig())
            await runtime.start()
            try:
                await asyncio.sleep(0.15)
                names = [task.get_name() for task in asyncio.all_tasks()]
                wheels = [n for n in names if n == "timer-wheel"]
                inboxes = [n for n in names if n.startswith("inbox-")]
                legacy = [n for n in names if n.startswith(("gossip-", "eager-"))]
                assert len(wheels) == 1
                assert len(inboxes) == num_users
                assert legacy == [], "per-node timer tasks must be gone"
                # Old design: 3 persistent tasks per node.  New: one inbox
                # per node plus a single shared wheel.
                assert len(wheels) + len(inboxes) == num_users + 1 < 3 * num_users
            finally:
                await runtime.stop()

        asyncio.run(go())

    def test_jittered_firing_is_preserved(self):
        """Acceptance: wheel firings keep the per-node jitter distribution.

        Pools inter-firing gaps across nodes: with ``jitter=0.5`` each gap
        is ``round_duration + interval * U(0.5, 1.5)``, so the spread is
        wide (uniform cv ~= 0.29); with ``jitter=0`` gaps hug the interval.
        """

        def observed_gaps(jitter):
            workload = build_demo_workload(num_users=8, num_queries=1, seed=13)
            simulation = converged_simulation(workload, 3)
            config = ServiceConfig(gossip_interval=0.04, jitter=jitter)
            recorded = []

            async def run():
                runtime = ServiceRuntime(simulation, config)
                await runtime.start()
                try:
                    await asyncio.sleep(0.8)
                finally:
                    recorded.extend(
                        list(service.gossip_fire_times)
                        for service in runtime.services.values()
                    )
                    await runtime.stop()

            asyncio.run(run())
            gaps = []
            for times in recorded:
                gaps.extend(b - a for a, b in zip(times, times[1:]))
            return gaps

        jittered = observed_gaps(jitter=0.5)
        steady = observed_gaps(jitter=0.0)
        assert len(jittered) >= 30 and len(steady) >= 30

        def cv(values):
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / len(values)
            return math.sqrt(var) / mean

        assert cv(jittered) > 0.12, f"jittered gaps too uniform: cv={cv(jittered):.3f}"
        assert cv(jittered) > cv(steady), (
            f"jitter must widen the gap spread: {cv(jittered):.3f} vs {cv(steady):.3f}"
        )


class TestCodecParity:
    """The service path under both codecs: clean invariants, bytes priced
    by ``gossip.sizes`` (never by encoded frame length)."""

    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    def test_run_passes_invariants_and_prices_by_sizes(self, codec_name):
        workload = build_demo_workload(num_users=16, num_queries=2, seed=9)
        config = ServiceConfig(codec=codec_name, query_deadline=8.0)
        runtime, simulation, sessions = _run(workload, config)
        check_trace(runtime.trace.events, simulation)
        accounted = sum(
            total_bytes(event.message)
            for event in runtime.trace.events
            if event.accounted
        )
        assert accounted == simulation.stats.total_bytes()
        assert any(session.closed for session in sessions.values())

    def test_malformed_binary_body_is_dropped_not_fatal(self, caplog):
        """A well-framed body with a bad binary tag drops loudly, inbox lives."""
        workload = build_demo_workload(num_users=8, num_queries=1, seed=5)
        simulation = converged_simulation(workload, 3)
        config = ServiceConfig(codec="binary")
        bad_body = bytes([0x03, 0x00, 0x00, 0x00, 0xEE])  # send frame, tag 0xEE
        frame = struct.pack(">I", len(bad_body)) + bad_body

        async def go():
            runtime = ServiceRuntime(simulation, config)
            await runtime.start()
            try:
                node_id = next(iter(runtime.services))
                assert runtime.wire.send(node_id, frame)
                await asyncio.sleep(0.05)
                assert not runtime.services[node_id]._inbox_task.done()
            finally:
                await runtime.stop()

        with caplog.at_level(logging.WARNING, logger="repro.service.runtime"):
            asyncio.run(go())
        assert "undecodable" in caplog.text
