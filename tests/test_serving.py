"""Tests for the query-serving subsystem (workloads, driver, resources)."""

from __future__ import annotations

import pytest

from repro.p3q.protocol import P3QSimulation
from repro.serving import (
    ABANDONED,
    COMPLETED,
    ServingConfig,
    ServingResult,
    build_workload,
    hot_topic_workload,
    long_tail_workload,
    mixed_workload,
    percentile,
    run_serving,
)
from repro.serving.resources import ResourceProbe, cpu_seconds, peak_rss_bytes
from repro.simulator.stats import StatsCollector


class TestWorkloads:
    def test_hot_topic_shares_one_query_across_queriers(self, synthetic_dataset):
        workload = hot_topic_workload(synthetic_dataset, num_queries=8, seed=3)
        assert workload.name == "hot-topic"
        assert len(workload.queries) == 8
        tags = {q.tags for q in workload.queries}
        assert len(tags) == 1  # the flash crowd asks the same thing
        assert len({q.querier for q in workload.queries}) == 8
        assert len({q.query_id for q in workload.queries}) == 8

    def test_long_tail_queries_are_personalized(self, synthetic_dataset):
        workload = long_tail_workload(synthetic_dataset, num_queries=10, seed=3)
        # Tags come from each querier's own profile.
        for query in workload.queries:
            profile = synthetic_dataset.profile(query.querier)
            assert set(query.tags) <= {tag for _item, tag in profile}

    def test_mixed_schedules_change_days(self, synthetic_dataset):
        workload = mixed_workload(
            synthetic_dataset, num_queries=6, seed=3, change_every=4, num_change_days=2
        )
        assert sorted(workload.change_schedule) == [4, 8]
        for change_day in workload.change_schedule.values():
            assert change_day.changes

    def test_builders_are_deterministic(self, synthetic_dataset):
        a = build_workload("hot-topic", synthetic_dataset, 6, seed=5)
        b = build_workload("hot-topic", synthetic_dataset, 6, seed=5)
        assert a.queries == b.queries

    def test_query_id_base_offsets_ids(self, synthetic_dataset):
        workload = build_workload(
            "long-tail", synthetic_dataset, 5, seed=5, query_id_base=1_000
        )
        assert all(q.query_id >= 1_000 for q in workload.queries)

    def test_unknown_workload_name(self, synthetic_dataset):
        with pytest.raises(ValueError, match="unknown serving workload"):
            build_workload("nope", synthetic_dataset, 5)


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(concurrency=0)
        with pytest.raises(ValueError):
            ServingConfig(arrivals_per_cycle=0)
        with pytest.raises(ValueError):
            ServingConfig(coverage_cutoff=1.5)
        with pytest.raises(ValueError):
            ServingConfig(cutoff_cycles=0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 50) == 5
        assert percentile(values, 95) == 10
        assert percentile(values, 100) == 10
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 0)


class TestDriver:
    def _run(self, simulation, workload, **overrides):
        defaults = dict(
            concurrency=4, arrivals_per_cycle=2, max_cycles=60, cutoff_cycles=20
        )
        defaults.update(overrides)
        return run_serving(simulation, workload, ServingConfig(**defaults))

    def test_completes_long_tail_on_converged_network(self, warm_simulation):
        workload = long_tail_workload(
            warm_simulation.dataset, num_queries=8, seed=3
        )
        result = self._run(warm_simulation, workload)
        assert len(result.outcomes) == 8
        assert result.completed == 8
        assert result.qps_cycle > 0
        assert result.qps_wall > 0
        # Every completed query carries its issue-to-close latency.
        latencies = result.latencies()
        assert len(latencies) == 8
        assert all(lat >= 0 for lat in latencies)
        assert result.latency_percentile(50) <= result.latency_percentile(95)
        assert result.latency_percentile(95) <= result.latency_percentile(99)

    def test_steady_state_injection_stamps_issue_cycles(self, warm_simulation):
        # More queries than concurrency * one cycle: later queries are
        # admitted after eager cycles already ran, so their sessions must
        # carry the later issue cycle (the latency fix under test).
        workload = long_tail_workload(
            warm_simulation.dataset, num_queries=10, seed=3
        )
        self._run(warm_simulation, workload, concurrency=2, arrivals_per_cycle=1)
        issue_cycles = {
            s.issued_cycle for s in warm_simulation.sessions().values()
        }
        assert len(issue_cycles) > 1
        assert max(issue_cycles) > 0

    def test_cutoff_abandons_slow_queries_with_coverage(self, warm_simulation):
        workload = long_tail_workload(
            warm_simulation.dataset, num_queries=6, seed=3
        )
        result = self._run(warm_simulation, workload, cutoff_cycles=1)
        assert result.completed + result.abandoned + result.rejected == 6
        for outcome in result.outcomes:
            if outcome.status == ABANDONED:
                assert 0.0 <= outcome.coverage < 1.0
                assert outcome.latency_cycles is None
            elif outcome.status == COMPLETED:
                assert outcome.coverage == pytest.approx(1.0)

    def test_mixed_workload_applies_dynamics(self, warm_simulation):
        workload = mixed_workload(
            warm_simulation.dataset,
            num_queries=8,
            seed=3,
            change_every=2,
            num_change_days=2,
        )
        result = self._run(
            warm_simulation, workload, concurrency=2, arrivals_per_cycle=1
        )
        assert result.change_days_applied >= 1
        assert result.completed + result.abandoned + result.rejected == 8

    def test_as_dict_reports_the_schema_fields(self, warm_simulation):
        workload = hot_topic_workload(warm_simulation.dataset, num_queries=5, seed=3)
        result = self._run(warm_simulation, workload)
        entry = result.as_dict()
        for key in (
            "workload",
            "concurrency",
            "num_queries",
            "completed",
            "qps_cycle",
            "qps_wall",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "coverage_at_cutoff",
            "messages",
            "wall_seconds",
            "cpu_seconds",
        ):
            assert key in entry
        assert entry["messages"] > 0


class TestEagerCycleClock:
    def test_issue_queries_stamps_the_current_eager_cycle(
        self, synthetic_dataset, small_config
    ):
        from repro.data.queries import QueryWorkloadGenerator

        simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
        simulation.warm_start()
        simulation.bootstrap_random_views()
        generator = QueryWorkloadGenerator(simulation.dataset, seed=5)
        first = generator.query_for(simulation.dataset.user_ids[0], query_id=900)
        simulation.issue_queries([first])
        simulation.run_eager(3, stop_when_idle=False)
        assert simulation.eager_cycles_run == 3
        second = generator.query_for(simulation.dataset.user_ids[1], query_id=901)
        sessions = simulation.issue_queries([second])
        assert sessions[901].issued_cycle == 3


class TestResources:
    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 0

    def test_probe_envelope(self):
        probe = ResourceProbe()
        sum(i * i for i in range(10_000))
        envelope = probe.stop()
        assert envelope.wall_seconds >= 0
        assert envelope.cpu_seconds >= 0
        payload = envelope.as_dict()
        assert "wall_seconds" in payload and "cpu_seconds" in payload

    def test_cpu_seconds_monotone(self):
        before = cpu_seconds()
        sum(i * i for i in range(10_000))
        assert cpu_seconds() >= before


class TestMessagesByCycle:
    def test_view_matches_totals(self):
        stats = StatsCollector()
        stats.record(0, 1, 2, "k", 10)
        stats.record(0, 2, 3, "k", 10)
        stats.record(1, 1, 2, "k", 10)
        assert stats.messages_by_cycle() == {0: 2, 1: 1}
        assert sum(stats.messages_by_cycle().values()) == stats.total_messages()

    def test_exact_across_flushes(self):
        stats = StatsCollector(flush_every=1)
        stats.record(0, 1, 2, "k", 10)
        stats.maybe_flush()
        stats.record(1, 1, 2, "k", 10)
        assert stats.messages_by_cycle() == {0: 1, 1: 1}

    def test_merge_folds_counts(self):
        a, b = StatsCollector(), StatsCollector()
        a.record(0, 1, 2, "k", 10)
        b.record(0, 3, 4, "k", 10)
        b.record(2, 3, 4, "k", 10)
        a.merge(b)
        assert a.messages_by_cycle() == {0: 2, 2: 1}
