"""Sharded cycle engine: bit-identity, worker invariance, pricing plumbing.

The contract under test (see ``repro/simulator/shard.py``) is that the
sharded engine is **bit-identical to the serial engine for any worker
count**: the parallel phase only pre-warms version-validated cache entries
and the apply phase is the unmodified serial schedule.  The strongest pins:

* the transport golden fixture, replayed through the sharded engine with a
  real forked worker pool, must match byte for byte;
* randomized simtest scenarios must fingerprint-match across
  ``workers in {1, 2, 4}``;
* deliberately *corrupt* pricing installs (wrong versions, wrong pair)
  must change nothing -- the read-side version validation is what the
  whole design leans on.

The fork executor is forced in these tests so the real multi-process path
runs even on single-core CI machines (where ``auto`` would pick inline).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.data import SyntheticConfig, generate_dataset
from repro.data.queries import QueryWorkloadGenerator
from repro.p3q import P3QConfig, P3QSimulation
from repro.simulator import (
    ShardedEngine,
    SimulationEngine,
    derive_rng,
    partition_shards,
    resolve_executor,
)
from repro.simulator.rng import SeededRngFactory
from repro.simulator.shard import EXECUTOR_FORK, EXECUTOR_INLINE
from repro.simtest.runner import _execute, run_scenario as run_simtest_scenario
from repro.simtest.spec import ScenarioGenerator, ScenarioSpec

from test_transport_equivalence import GOLDEN_PATH, run_scenario as golden_scenario


# ------------------------------------------------------------------ partitions


class TestPartitioning:
    def test_round_robin_disjoint_union(self):
        ids = list(range(17))
        shards = partition_shards(ids, 4)
        assert len(shards) == 4
        flat = [uid for shard in shards for uid in shard]
        assert sorted(flat) == ids
        assert shards[0] == (0, 4, 8, 12, 16)
        assert shards[3] == (3, 7, 11, 15)

    def test_single_worker_is_identity(self):
        ids = [3, 1, 2]
        assert partition_shards(ids, 1) == [(3, 1, 2)]

    def test_more_workers_than_nodes_leaves_empty_shards(self):
        shards = partition_shards([1, 2], 4)
        assert shards == [(1,), (2,), (), ()]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            partition_shards([1], 0)


class TestExecutorResolution:
    def test_one_worker_is_always_inline(self):
        assert resolve_executor("auto", 1) == EXECUTOR_INLINE
        assert resolve_executor("fork", 1) == EXECUTOR_INLINE

    def test_explicit_inline_honoured(self):
        assert resolve_executor("inline", 4) == EXECUTOR_INLINE

    def test_explicit_fork_honoured_on_posix(self):
        assert resolve_executor("fork", 2) == EXECUTOR_FORK

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("threads", 2)


# ------------------------------------------------------------ counter streams


class TestCounterRng:
    def test_same_coordinates_same_draws(self):
        factory = SeededRngFactory(7)
        a = factory.counter_stream("shard-2", 13)
        b = factory.counter_stream("shard-2", 13)
        assert a is not b
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_counters_diverge(self):
        factory = SeededRngFactory(7)
        a = factory.counter_stream("shard-2", 13)
        b = factory.counter_stream("shard-2", 14)
        assert a.random() != b.random()

    def test_counter_streams_do_not_touch_cached_streams(self):
        factory = SeededRngFactory(7)
        before = factory.for_purpose("scheduler").random()
        factory2 = SeededRngFactory(7)
        factory2.counter_stream("anything", 0).random()
        assert factory2.for_purpose("scheduler").random() == before

    def test_derive_rng_is_pure(self):
        assert derive_rng(1, "a", 2).random() == derive_rng(1, "a", 2).random()


# ------------------------------------------------------------- golden identity


class TestGoldenBitIdentity:
    def test_sharded_fork_engine_matches_the_transport_golden(self):
        """The strongest pin: forked pricing workers, golden-identical run."""
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert golden_scenario({"workers": 2, "engine_executor": "fork"}) == golden

    def test_inline_sharded_engine_matches_the_transport_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert golden_scenario({"workers": 4, "engine_executor": "inline"}) == golden


# -------------------------------------------------------- worker invariance


def _spec_fingerprint(spec: ScenarioSpec):
    return _execute(spec, ())


class TestWorkerCountInvariance:
    def test_randomized_specs_fingerprint_match_across_worker_counts(self):
        """Property: workers in {1, 2, 4} produce identical run fingerprints.

        The specs come from the seeded generator (shrunk to small fast
        shapes that keep churn/dynamics inside the clamped horizons via the
        shrinker's own clamp helper).
        """
        from repro.simtest.shrink import _clamp_schedule

        generator = ScenarioGenerator(master_seed=2026)
        checked = 0
        for index in range(4):
            raw = generator.spec(index)
            spec = _clamp_schedule(raw, min(raw.lazy_cycles, 3), min(raw.eager_cycles, 4))
            spec = spec.but(workers=1)
            reference = _spec_fingerprint(spec)
            for workers in (2, 4):
                assert _spec_fingerprint(spec.but(workers=workers)) == reference, (
                    f"spec {index} diverged at workers={workers}"
                )
            checked += 1
        assert checked == 4

    def test_simtest_runner_checks_the_serial_twin(self):
        spec = ScenarioSpec(workers=2, lazy_cycles=3, eager_cycles=4)
        result = run_simtest_scenario(spec)
        assert result.ok, result.violation
        assert "worker-count-equivalence" in result.checked


# ------------------------------------------------ pricing-install robustness


def _tiny_simulation(workers: int = 1, executor: str = "auto") -> P3QSimulation:
    dataset = generate_dataset(
        SyntheticConfig(
            num_users=36,
            num_items=260,
            num_tags=80,
            num_communities=4,
            mean_actions_per_user=22,
            seed=11,
        )
    )
    config = P3QConfig(
        network_size=10,
        storage=4,
        seed=3,
        digest_bits=1_024,
        digest_hashes=4,
        workers=workers,
        engine_executor=executor,
    )
    sim = P3QSimulation(dataset, config)
    sim.bootstrap_random_views()
    return sim


def _state_fingerprint(sim: P3QSimulation):
    return (
        sorted(sim.stats.bytes_by_kind().items()),
        {uid: node.personal_network.member_ids() for uid, node in sorted(sim.nodes.items())},
        {uid: node.random_view.member_ids() for uid, node in sorted(sim.nodes.items())},
    )


class TestPricingInstallSafety:
    def test_stale_installs_cannot_change_behaviour(self):
        """Entries whose versions do not match the live state are inert.

        This is the validation the sharded engine's safety argument rests
        on: an install is *trusted only at the exact versions it names*, so
        entries from outdated snapshots (the realistic failure: a worker
        priced against state that changed before the merge) are never
        served.  A worker can of course not produce a wrong value *at*
        matching versions -- it runs the same pure pricing code on content
        those versions denote.
        """
        clean = _tiny_simulation()
        clean.run_lazy(3)
        reference = _state_fingerprint(clean)

        poisoned = _tiny_simulation()
        rng = random.Random(9)
        users = list(poisoned.nodes)
        garbage = []
        for _ in range(200):
            receiver = rng.choice(users)
            subject = rng.choice(users)
            garbage.append(
                (
                    receiver,
                    10_000 + rng.randrange(50),  # version no profile ever reaches
                    subject,
                    10_000 + rng.randrange(50),
                    frozenset(rng.sample(range(260), k=5)),  # nonsense payload
                )
            )
        assert poisoned.digest_cache.install_common_entries(garbage) == len(garbage)
        poisoned.run_lazy(3)
        assert _state_fingerprint(poisoned) == reference

    def test_fork_engine_reports_pricing_activity(self):
        sim = _tiny_simulation(workers=2, executor="fork")
        assert isinstance(sim.engine, ShardedEngine)
        assert sim.engine.executor == "fork"
        sim.run_lazy(2)
        stats = sim.engine.pricing_stats
        assert stats["cycles_priced"] == 2
        assert stats["entries_installed"] > 0
        assert stats["worker_failures"] == 0

    def test_inline_executor_is_a_pass_through(self):
        sim = _tiny_simulation(workers=4, executor="inline")
        assert isinstance(sim.engine, ShardedEngine)
        sim.run_lazy(2)
        assert sim.engine.pricing_stats["cycles_priced"] == 0

    def test_workers_one_uses_the_serial_engine(self):
        sim = _tiny_simulation(workers=1)
        assert type(sim.engine) is SimulationEngine

    def test_config_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            P3QConfig(workers=0)
        with pytest.raises(ValueError):
            P3QConfig(engine_executor="threads")


# -------------------------------------------------- shard-parallel bootstrap


class TestParallelBootstrap:
    def test_fork_bootstrap_matches_serial_bootstrap(self):
        serial = _tiny_simulation(workers=1)
        forked = _tiny_simulation(workers=2, executor="fork")
        assert {
            uid: node.random_view.member_ids() for uid, node in sorted(serial.nodes.items())
        } == {
            uid: node.random_view.member_ids() for uid, node in sorted(forked.nodes.items())
        }
        # And the runs that follow stay identical.
        serial.run_lazy(2)
        forked.run_lazy(2)
        assert _state_fingerprint(serial) == _state_fingerprint(forked)

    def test_installed_digests_match_locally_built_ones(self):
        sim = _tiny_simulation()
        installed = sim._parallel_digest_build()  # inline engine: no-op
        assert installed == 0
        forked = _tiny_simulation(workers=2, executor="fork")
        for uid, node in forked.nodes.items():
            digest = forked.digest_cache.digest_for(node.profile)
            rebuilt = sim.digest_cache.digest_for(sim.nodes[uid].profile)
            assert digest.bloom == rebuilt.bloom
            assert digest.version == rebuilt.version


# ------------------------------------------------------------- spec plumbing


class TestSpecWorkersDimension:
    def test_workers_round_trips_through_json(self):
        spec = ScenarioSpec(workers=4)
        assert ScenarioSpec.from_json(spec.to_json()).workers == 4

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ScenarioSpec(workers=0)

    def test_worker_dimension_comes_from_an_independent_stream(self):
        """Enabling/disabling the dimension leaves every other field alone."""
        from dataclasses import replace

        from repro.simtest.spec import GeneratorRanges

        with_dim = ScenarioGenerator(master_seed=5)
        without = ScenarioGenerator(
            master_seed=5, ranges=replace(GeneratorRanges(), p_workers=0.0)
        )
        for index in range(30):
            a = with_dim.spec(index)
            b = without.spec(index)
            # workers AND the executor choice belong to the dimension.
            assert a.but(workers=1, engine_executor="fork") == b

    def test_generator_samples_workers_eventually(self):
        generator = ScenarioGenerator(master_seed=5)
        workers = {generator.spec(i).workers for i in range(60)}
        assert workers - {1}, "p_workers=0.2 should hit within 60 specs"
        assert workers - {1} <= {2, 4}
