"""Tests for similarity metrics and the offline ideal-network index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.models import UserProfile
from repro.similarity import (
    IdealNetworkIndex,
    common_actions,
    cosine_score,
    get_metric,
    item_overlap_score,
    jaccard_score,
    overlap_score,
    overlap_score_from_actions,
    pairwise_overlap_counts,
)

action_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
)


def _profile(user_id: int, actions) -> UserProfile:
    return UserProfile(user_id, actions)


class TestMetrics:
    def test_overlap_counts_common_actions(self, tiny_dataset):
        a = tiny_dataset.profile(0)
        b = tiny_dataset.profile(1)
        # Common actions: (1,100), (2,100), (3,101)
        assert overlap_score(a, b) == 3

    def test_overlap_zero_for_disjoint_profiles(self, tiny_dataset):
        assert overlap_score(tiny_dataset.profile(0), tiny_dataset.profile(3)) == 0

    def test_overlap_from_actions_matches_full_overlap(self, tiny_dataset):
        a = tiny_dataset.profile(0)
        b = tiny_dataset.profile(1)
        partial = b.actions_for_items(a.items)
        assert overlap_score_from_actions(a.actions, partial) == overlap_score(a, b)

    def test_jaccard_bounds(self, tiny_dataset):
        a = tiny_dataset.profile(0)
        b = tiny_dataset.profile(1)
        assert 0.0 <= jaccard_score(a, b) <= 1.0

    def test_cosine_bounds(self, tiny_dataset):
        a = tiny_dataset.profile(0)
        b = tiny_dataset.profile(1)
        assert 0.0 <= cosine_score(a, b) <= 1.0

    def test_item_overlap_counts_items_not_actions(self, tiny_dataset):
        a = tiny_dataset.profile(0)
        c = tiny_dataset.profile(2)
        # Common items 1, 2, 4 even though tags differ on item 2.
        assert item_overlap_score(a, c) == 3

    def test_get_metric_known_and_unknown(self):
        assert get_metric("overlap") is overlap_score
        with pytest.raises(KeyError):
            get_metric("nope")

    @given(action_lists, action_lists)
    @settings(max_examples=60)
    def test_all_metrics_are_symmetric(self, actions_a, actions_b):
        a = _profile(0, actions_a)
        b = _profile(1, actions_b)
        for metric in (overlap_score, jaccard_score, cosine_score, item_overlap_score):
            assert metric(a, b) == pytest.approx(metric(b, a))

    @given(action_lists)
    @settings(max_examples=40)
    def test_self_similarity_is_maximal_overlap(self, actions):
        profile = _profile(0, actions)
        assert overlap_score(profile, profile) == len(profile)
        if len(profile):
            assert jaccard_score(profile, profile) == pytest.approx(1.0)
            assert cosine_score(profile, profile) == pytest.approx(1.0)

    @given(action_lists, action_lists)
    @settings(max_examples=60)
    def test_overlap_bounded_by_smaller_profile(self, actions_a, actions_b):
        a = _profile(0, actions_a)
        b = _profile(1, actions_b)
        assert overlap_score(a, b) <= min(len(a), len(b))

    @given(action_lists, action_lists)
    @settings(max_examples=40)
    def test_common_actions_is_set_intersection(self, actions_a, actions_b):
        a = _profile(0, actions_a)
        b = _profile(1, actions_b)
        assert common_actions(a, b) == set(a.actions) & set(b.actions)


class TestPairwiseCounts:
    def test_counts_match_direct_overlap(self, tiny_dataset):
        counts = pairwise_overlap_counts(tiny_dataset)
        for (ua, ub), count in counts.items():
            assert count == overlap_score(tiny_dataset.profile(ua), tiny_dataset.profile(ub))

    def test_zero_pairs_absent(self, tiny_dataset):
        counts = pairwise_overlap_counts(tiny_dataset)
        assert (0, 3) not in counts  # disjoint profiles never appear

    def test_matches_brute_force_on_synthetic_data(self, synthetic_dataset):
        counts = pairwise_overlap_counts(synthetic_dataset)
        user_ids = synthetic_dataset.user_ids[:15]
        for i, ua in enumerate(user_ids):
            for ub in user_ids[i + 1:]:
                expected = overlap_score(
                    synthetic_dataset.profile(ua), synthetic_dataset.profile(ub)
                )
                assert counts.get((ua, ub), 0) == expected


class TestIdealNetworkIndex:
    def test_rejects_non_positive_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            IdealNetworkIndex(tiny_dataset, size=0)

    def test_networks_only_contain_positive_scores(self, tiny_dataset):
        index = IdealNetworkIndex(tiny_dataset, size=4)
        for uid in tiny_dataset.user_ids:
            for neighbour in index.network_of(uid):
                assert neighbour.score > 0

    def test_networks_sorted_by_descending_score(self, synthetic_ideal, synthetic_dataset):
        for uid in synthetic_dataset.user_ids:
            scores = [n.score for n in synthetic_ideal.network_of(uid)]
            assert scores == sorted(scores, reverse=True)

    def test_network_respects_size_limit(self, synthetic_dataset):
        index = IdealNetworkIndex(synthetic_dataset, size=5)
        assert all(len(index.network_of(uid)) <= 5 for uid in synthetic_dataset.user_ids)

    def test_inverted_index_matches_brute_force(self, tiny_dataset):
        fast = IdealNetworkIndex(tiny_dataset, size=4)
        slow = IdealNetworkIndex(tiny_dataset, size=4, metric=jaccard_score)
        # Different metrics rank differently, but the overlap-metric index
        # must agree with a brute-force overlap computation.
        brute = IdealNetworkIndex.__new__(IdealNetworkIndex)
        brute.dataset = tiny_dataset
        brute.size = 4
        brute.metric = overlap_score
        brute._networks = {}
        brute._build_brute_force()
        for uid in tiny_dataset.user_ids:
            assert fast.neighbour_ids(uid) == brute.neighbour_ids(uid)
        assert slow.network_of(0)  # jaccard path exercised

    def test_top_c_ids_prefix_of_network(self, synthetic_ideal, synthetic_dataset):
        uid = synthetic_dataset.user_ids[0]
        assert synthetic_ideal.top_c_ids(uid, 3) == synthetic_ideal.neighbour_ids(uid)[:3]

    def test_score_lookup(self, tiny_dataset):
        index = IdealNetworkIndex(tiny_dataset, size=4)
        assert index.score(0, 1) == 3
        assert index.score(0, 3) == 0

    def test_success_ratio_bounds_and_perfect_discovery(self, synthetic_ideal, synthetic_dataset):
        uid = synthetic_dataset.user_ids[0]
        ideal_ids = synthetic_ideal.neighbour_ids(uid)
        assert synthetic_ideal.success_ratio(uid, ideal_ids) == 1.0
        assert synthetic_ideal.success_ratio(uid, []) == (1.0 if not ideal_ids else 0.0)

    def test_average_success_ratio_with_full_knowledge(self, synthetic_ideal, synthetic_dataset):
        discovered = {
            uid: synthetic_ideal.neighbour_ids(uid) for uid in synthetic_dataset.user_ids
        }
        assert synthetic_ideal.average_success_ratio(discovered) == pytest.approx(1.0)
