"""Interned similarity scoring must equal the naive tuple-set definition.

The performance overhaul made every similarity metric score on
``UserProfile.action_ids`` -- per-version cached frozensets of interned
action ids (:mod:`repro.data.interning`) -- instead of rebuilding tuple
sets per comparison.  These property tests pin the core invariant: for any
two profiles the interned score equals the score computed from scratch on
raw ``(item, tag)`` tuples, and the maintained indexes stay consistent
through mutation and copying.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.data import GLOBAL_INTERNER, action_of, intern_action
from repro.data.models import UserProfile
from repro.similarity import (
    common_actions,
    cosine_score,
    item_overlap_score,
    jaccard_score,
    overlap_score,
    overlap_score_from_actions,
)

actions = st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60)


def naive_overlap(a: UserProfile, b: UserProfile) -> float:
    """The pre-interning definition, computed from scratch on tuples."""
    return float(len(set(iter(a)) & set(iter(b))))


class TestScoreEquivalence:
    @given(actions, actions)
    @settings(max_examples=100)
    def test_overlap_matches_naive(self, acts_a, acts_b):
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        assert overlap_score(a, b) == naive_overlap(a, b)

    @given(actions, actions)
    @settings(max_examples=100)
    def test_jaccard_matches_naive(self, acts_a, acts_b):
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        inter = naive_overlap(a, b)
        union = len(a) + len(b) - inter
        expected = inter / union if union else 0.0
        assert jaccard_score(a, b) == expected

    @given(actions, actions)
    @settings(max_examples=100)
    def test_cosine_matches_naive(self, acts_a, acts_b):
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        if len(a) == 0 or len(b) == 0:
            expected = 0.0
        else:
            expected = naive_overlap(a, b) / math.sqrt(len(a) * len(b))
        assert cosine_score(a, b) == expected

    @given(actions, actions)
    @settings(max_examples=100)
    def test_item_overlap_matches_naive(self, acts_a, acts_b):
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        expected = float(len({i for i, _ in acts_a} & {i for i, _ in acts_b}))
        assert item_overlap_score(a, b) == expected

    @given(actions, actions)
    @settings(max_examples=100)
    def test_common_actions_matches_tuple_intersection(self, acts_a, acts_b):
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        assert common_actions(a, b) == set(acts_a) & set(acts_b)

    @given(actions, actions)
    @settings(max_examples=50)
    def test_lazy_exchange_partial_scoring_matches(self, acts_a, acts_b):
        """Step-2 scoring (actions on common items) equals full-profile score."""
        a, b = UserProfile(1, acts_a), UserProfile(2, acts_b)
        partial = b.actions_for_items(a.items)
        assert overlap_score_from_actions(a.actions, partial) == overlap_score(a, b)


class TestInternedIndexConsistency:
    @given(actions)
    @settings(max_examples=100)
    def test_action_ids_roundtrip_to_actions(self, acts):
        profile = UserProfile(1, acts)
        assert {action_of(aid) for aid in profile.action_ids} == set(acts)
        assert len(profile.action_ids) == len(profile.actions)

    @given(actions)
    @settings(max_examples=50)
    def test_tag_index_matches_item_index(self, acts):
        profile = UserProfile(1, acts)
        for item, tag in acts:
            assert item in profile.items_for_tag(tag)
            assert tag in profile.tags_for(item)

    def test_interner_is_idempotent_and_bijective(self):
        first = intern_action(777_001, 42)
        assert intern_action(777_001, 42) == first
        assert GLOBAL_INTERNER.action_of(first) == (777_001, 42)
        assert GLOBAL_INTERNER.id_of(777_001, 42) == first

    def test_cached_views_invalidate_on_add(self):
        profile = UserProfile(1, [(1, 1)])
        before_actions = profile.actions
        before_ids = profile.action_ids
        assert profile.add(2, 2)
        assert (2, 2) in profile.actions
        assert len(profile.action_ids) == 2
        # The previously handed-out views are unchanged snapshots.
        assert before_actions == frozenset({(1, 1)})
        assert len(before_ids) == 1

    def test_copy_is_independent(self):
        original = UserProfile(1, [(1, 1), (2, 2)])
        clone = original.copy()
        assert clone.action_ids == original.action_ids
        assert clone.version == original.version
        assert clone.add(3, 3)
        assert (3, 3) not in original.actions
        assert len(original.action_ids) == 2
        assert original.items_for_tag(3) == frozenset()
        assert clone.items_for_tag(3) == frozenset({3})

    def test_duplicate_add_changes_nothing(self):
        profile = UserProfile(1, [(5, 6)])
        version = profile.version
        assert not profile.add(5, 6)
        assert profile.version == version
        assert len(profile.action_ids) == 1
