"""Tests for the simulation-fuzzing subsystem (``repro.simtest``).

Covers the spec/generator layer (determinism, JSON round-trips), the runner
(clean runs, checker neutrality, zero-condition equivalence), the invariant
checkers (each must fire on a purpose-built mutation of the system), the
greedy shrinker, and the CLI driver including its self-check mode.
"""

from __future__ import annotations

import pytest

from repro.gossip import sizes
from repro.p3q.eager import EagerGossipProtocol
from repro.simtest import (
    REGISTRY,
    ScenarioGenerator,
    ScenarioSpec,
    default_checkers,
    run_scenario,
    shrink,
)
from repro.simtest.cli import broken_byte_pricing, main
from repro.simtest.invariants import reference_kind, reference_price
from repro.simtest.spec import (
    ChurnEvent,
    CommunityChurnEvent,
    DynamicsSpec,
    GeneratorRanges,
)
from repro.simulator.transport import DigestAdvertisement
from repro.gossip.views import PersonalNetwork


#: A fast spec used wherever a concrete scenario is needed.
FAST_SPEC = ScenarioSpec(
    num_users=18,
    num_items=120,
    num_tags=40,
    num_communities=3,
    mean_actions_per_user=16,
    network_size=8,
    storage=3,
    random_view_size=4,
    k=6,
    lazy_cycles=3,
    eager_cycles=8,
    num_queries=3,
    seed=7,
)


class TestSpec:
    def test_generator_is_deterministic_and_indexed(self):
        a = ScenarioGenerator(5)
        b = ScenarioGenerator(5)
        assert [a.spec(i) for i in range(10)] == [b.spec(i) for i in range(10)]
        # Indexed access: spec(7) does not depend on generating 0..6 first.
        assert ScenarioGenerator(5).spec(7) == a.spec(7)

    def test_different_master_seeds_differ(self):
        assert ScenarioGenerator(1).spec(0) != ScenarioGenerator(2).spec(0)

    def test_json_round_trip(self):
        spec = ScenarioGenerator(0).spec(4)
        assert spec.churn and spec.dynamics  # seed 0 / index 4 has both
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_with_every_condition(self):
        from repro.simulator.conditions import AsymmetrySpec, PartitionSpec

        spec = FAST_SPEC.but(
            transport="conditioned",
            partition=PartitionSpec(components=3, split_cycle=2, heal_cycle=6),
            asymmetry=AsymmetrySpec(
                degraded_fraction=0.2,
                link_loss_rate=0.1,
                link_delay_cycles=2,
                nat_fraction=0.1,
            ),
            free_rider_fraction=0.25,
            churn=(
                ChurnEvent(
                    phase="lazy", cycle=1, fraction=0.2, rejoin_after=1, mode="crash"
                ),
            ),
            community_churn=(
                CommunityChurnEvent(
                    phase="eager", cycle=1, community=1, rejoin_after=2, mode="crash"
                ),
            ),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_repro_command_embeds_the_spec(self):
        spec = FAST_SPEC
        command = spec.repro_command()
        assert "python -m repro.simtest" in command
        assert "--spec-json" in command

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FAST_SPEC.but(network_size=18)  # >= num_users
        with pytest.raises(ValueError):
            FAST_SPEC.but(churn=(ChurnEvent(phase="lazy", cycle=99, fraction=0.2),))
        with pytest.raises(ValueError):
            FAST_SPEC.but(dynamics=DynamicsSpec(at_cycle=99, change_fraction=0.2))
        with pytest.raises(ValueError):
            ChurnEvent(phase="lazy", cycle=1, fraction=0.9)

    def test_rejoins_outside_the_horizon_rejected(self):
        # FAST_SPEC has lazy_cycles=3: a rejoin at cycle 2+1 == 3 would land
        # on a cycle that never runs and silently strand the departed users.
        with pytest.raises(ValueError, match="rejoin"):
            FAST_SPEC.but(
                churn=(ChurnEvent(phase="lazy", cycle=2, fraction=0.2, rejoin_after=1),)
            )
        ok = FAST_SPEC.but(
            churn=(ChurnEvent(phase="lazy", cycle=1, fraction=0.2, rejoin_after=1),)
        )
        assert ok.churn[0].rejoin_after == 1

    def test_generated_rejoins_always_fire(self):
        """Every sampled rejoin lands strictly inside its phase horizon."""
        for spec in ScenarioGenerator(0).specs(200):
            for event in spec.churn:
                horizon = (
                    spec.lazy_cycles if event.phase == "lazy" else spec.eager_cycles
                )
                if event.rejoin_after:
                    assert event.cycle + event.rejoin_after < horizon

    def test_generated_specs_are_valid_and_varied(self):
        specs = list(ScenarioGenerator(3).specs(40))
        transports = {spec.transport for spec in specs}
        assert transports == {"direct", "lossy", "latency", "conditioned"}
        assert any(spec.churn for spec in specs)
        assert any(spec.dynamics for spec in specs)
        assert any(
            spec.transport != "direct" and spec.direct_equivalent for spec in specs
        )

    def test_generated_specs_cover_adversarial_dimensions(self):
        specs = list(ScenarioGenerator(3).specs(120))
        assert any(spec.partition is not None for spec in specs)
        assert any(
            spec.asymmetry is not None and not spec.asymmetry.is_null
            for spec in specs
        )
        assert any(spec.free_rider_fraction > 0.0 for spec in specs)
        assert any(
            event.mode == "crash" for spec in specs for event in spec.churn
        )
        assert any(spec.community_churn for spec in specs)

    def test_adversarial_profile_skews_toward_conditions(self):
        base = list(ScenarioGenerator(3).specs(60))
        hostile = list(
            ScenarioGenerator(3, ranges=GeneratorRanges.adversarial()).specs(60)
        )

        def count(specs):
            return sum(
                1
                for spec in specs
                if spec.partition is not None
                or (spec.asymmetry is not None and not spec.asymmetry.is_null)
                or spec.free_rider_fraction > 0.0
                or spec.community_churn
            )

        assert count(hostile) > count(base)


class TestRunner:
    def test_fast_spec_passes_all_invariants(self):
        result = run_scenario(FAST_SPEC)
        assert result.ok, result.violation
        applicable = {c.name for c in default_checkers(FAST_SPEC)}
        assert set(result.checked) == applicable
        # The adversarial checkers gate on their conditions being present.
        assert set(REGISTRY) - applicable == {
            "partition-isolation",
            "free-rider-containment",
        }

    def test_checkers_do_not_perturb_the_run(self):
        """Observers and hooks are passive: fingerprints match bit for bit."""
        with_checkers = run_scenario(FAST_SPEC)
        without = run_scenario(FAST_SPEC, checkers=())
        assert with_checkers.ok and without.ok
        assert with_checkers.fingerprint == without.fingerprint

    def test_same_spec_same_fingerprint(self):
        assert run_scenario(FAST_SPEC).fingerprint == run_scenario(FAST_SPEC).fingerprint

    def test_zero_condition_lossy_matches_direct_twin(self):
        result = run_scenario(FAST_SPEC.but(transport="lossy"))
        assert result.ok, result.violation
        assert "zero-condition-equivalence" in result.checked
        assert result.fingerprint == run_scenario(FAST_SPEC).fingerprint

    def test_stochastic_scenarios_pass(self):
        lossy = run_scenario(FAST_SPEC.but(transport="lossy", loss_rate=0.3))
        assert lossy.ok, lossy.violation
        latency = run_scenario(
            FAST_SPEC.but(transport="latency", delay_cycles=2, loss_rate=0.1)
        )
        assert latency.ok, latency.violation

    def test_churn_and_dynamics_scenarios_pass(self):
        spec = FAST_SPEC.but(
            churn=(
                ChurnEvent(phase="lazy", cycle=1, fraction=0.2, rejoin_after=1),
                ChurnEvent(phase="eager", cycle=2, fraction=0.3),
            ),
            dynamics=DynamicsSpec(at_cycle=1, change_fraction=0.3),
        )
        result = run_scenario(spec)
        assert result.ok, result.violation

    def test_crash_is_reported_not_raised(self, monkeypatch):
        from repro.simtest import runner as runner_module

        def boom(spec):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(runner_module, "build_simulation", boom)
        result = run_scenario(FAST_SPEC)
        assert not result.ok
        assert result.invariant == "crash"
        assert "synthetic crash" in result.violation.detail


class TestInvariantsFire:
    """Every checker must catch a purpose-built breakage of the system."""

    def test_byte_conservation_catches_mutated_pricing(self):
        with broken_byte_pricing():
            result = run_scenario(FAST_SPEC)
        assert result.invariant == "byte-conservation"
        # The mutation is scoped: pricing is intact again afterwards.
        assert run_scenario(FAST_SPEC).ok

    def test_view_bounds_catches_unbounded_random_view(self, monkeypatch):
        from repro.gossip.views import RandomView

        monkeypatch.setattr(RandomView, "_shrink_random", lambda self, rng: None)
        result = run_scenario(FAST_SPEC)
        assert result.invariant == "view-bounds"
        assert "random view" in result.violation.detail

    def test_view_bounds_catches_storage_budget_leak(self, monkeypatch):
        monkeypatch.setattr(
            PersonalNetwork, "_enforce_storage_budget", lambda self: None
        )
        result = run_scenario(FAST_SPEC)
        assert result.invariant == "view-bounds"

    def test_query_lifecycle_catches_retry_after_handoff(self, monkeypatch):
        """An initiator that re-forwards after REPLY_DROPPED must be flagged."""
        original = EagerGossipProtocol.gossip_query_effects

        def retrying(self, initiator, query, remaining, cycle):
            kept = list(remaining)
            result = yield from original(self, initiator, query, remaining, cycle)
            # Pretend the REPLY_DROPPED/DEFERRED hand-off never happened.
            return result if result else kept

        monkeypatch.setattr(EagerGossipProtocol, "gossip_query_effects", retrying)
        spec = FAST_SPEC.but(transport="lossy", loss_rate=0.4, eager_cycles=10)
        result = run_scenario(spec)
        assert result.invariant == "query-lifecycle"
        assert "re-forwarded" in result.violation.detail

    def test_recall_convergence_catches_lost_contributions(self, monkeypatch):
        """Silently discarding partial results strands quiescent queries."""
        from repro.p3q.node import P3QNode

        monkeypatch.setattr(
            P3QNode, "receive_partial_result", lambda self, partial: None
        )
        result = run_scenario(FAST_SPEC)
        assert result.invariant == "recall-convergence"
        assert "incomplete" in result.violation.detail

    def test_replica_freshness_catches_future_versions(self, monkeypatch):
        from repro.data.models import UserProfile

        original = UserProfile.copy

        def time_travelling_copy(self):
            clone = original(self)
            clone._version = self._version + 1000
            return clone

        monkeypatch.setattr(UserProfile, "copy", time_travelling_copy)
        result = run_scenario(FAST_SPEC)
        assert result.invariant == "replica-freshness"
        assert "live version" in result.violation.detail


class TestReferenceModel:
    def test_reference_agrees_with_production_sizes(self):
        """The independent pricer and gossip.sizes agree on a digest message."""
        message = DigestAdvertisement(digests=(), view="random")
        assert reference_price(message) == sizes.total_bytes(message) == 0
        assert reference_kind(message) == "random_view_digests"


class TestShrink:
    def test_shrinker_minimises_a_pricing_failure(self):
        spec = ScenarioGenerator(0).spec(4)
        assert spec.churn and spec.dynamics and spec.loss_rate > 0
        with broken_byte_pricing():
            failing = run_scenario(spec)
            assert failing.invariant == "byte-conservation"
            shrunk = shrink(spec, "byte-conservation", max_runs=40)
        minimal = shrunk.spec
        assert shrunk.invariant == "byte-conservation"
        # The stressors irrelevant to a pricing bug must all be gone.
        assert minimal.churn == ()
        assert minimal.dynamics is None
        assert minimal.transport == "direct"
        assert minimal.loss_rate == 0.0
        assert minimal.num_users < spec.num_users
        # The minimal spec replays the failure standalone.
        with broken_byte_pricing():
            assert run_scenario(minimal).invariant == "byte-conservation"

    def test_shrink_refuses_a_passing_spec(self):
        with pytest.raises(ValueError):
            shrink(FAST_SPEC, "byte-conservation", max_runs=4)


class TestCli:
    def test_batch_passes_and_is_deterministic(self, capsys):
        assert main(["--seeds", "3", "--seed", "0"]) == 0
        first = capsys.readouterr().out
        assert main(["--seeds", "3", "--seed", "0"]) == 0
        assert capsys.readouterr().out == first
        assert "3 scenario(s) run, 0 failure(s)" in first

    def test_single_spec_replay(self, capsys):
        assert main(["--spec-json", FAST_SPEC.to_json()]) == 0
        out = capsys.readouterr().out
        assert "[spec] ok" in out

    def test_list_invariants(self, capsys):
        assert main(["--list-invariants"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_failure_reports_minimal_repro_command(self, capsys):
        with broken_byte_pricing():
            code = main(["--seeds", "2", "--seed", "0", "--max-shrink-runs", "25"])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation: [byte-conservation]" in out
        assert "reproduce with:" in out
        assert "--spec-json" in out

    def test_self_check_catches_and_exits_zero(self, capsys):
        assert main(["--self-check", "--seeds", "3", "--max-shrink-runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "self-check passed" in out
        # And the pricing is intact again after the self-check.
        assert main(["--seeds", "1", "--seed", "0"]) == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seeds", "0"])
        with pytest.raises(SystemExit):
            main(["--spec-json", "{}", "--spec", "nope.json"])


class TestRegistry:
    def test_applicability_filters(self):
        lossy = ScenarioSpec.from_json(
            FAST_SPEC.but(transport="lossy", loss_rate=0.2).to_json()
        )
        names = {checker.name for checker in default_checkers(lossy)}
        assert "recall-convergence" not in names
        assert "byte-conservation" in names
        direct_names = {checker.name for checker in default_checkers(FAST_SPEC)}
        assert "recall-convergence" in direct_names
