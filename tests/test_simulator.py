"""Tests for the cycle-driven simulator substrate."""

from __future__ import annotations

import pytest

from repro.simulator import (
    KIND_DIGESTS,
    Network,
    Node,
    NodeOfflineError,
    PHASE_EAGER,
    PHASE_LAZY,
    ScheduledEvent,
    SeededRngFactory,
    SimulationEngine,
    StatsCollector,
    UnknownNodeError,
)


class RecordingNode(Node):
    """A node that records every cycle it executes."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.executed = []
        self.departures = 0
        self.joins = 0

    def on_cycle(self, cycle: int, phase: str) -> None:
        self.executed.append((cycle, phase))

    def on_departure(self) -> None:
        self.departures += 1

    def on_join(self) -> None:
        self.joins += 1


class TestRng:
    def test_same_seed_same_stream(self):
        a = SeededRngFactory(1).for_node(5)
        b = SeededRngFactory(1).for_node(5)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_nodes_get_different_streams(self):
        factory = SeededRngFactory(1)
        assert factory.for_node(1).random() != factory.for_node(2).random()

    def test_stream_is_cached(self):
        factory = SeededRngFactory(0)
        assert factory.for_purpose("x") is factory.for_purpose("x")


class TestStatsCollector:
    def test_records_and_totals(self):
        stats = StatsCollector()
        stats.record(0, 1, 2, KIND_DIGESTS, 100)
        stats.record(1, 2, 1, KIND_DIGESTS, 50, query_id=7)
        assert stats.total_bytes() == 150
        assert stats.total_bytes(KIND_DIGESTS) == 150
        assert stats.total_messages(KIND_DIGESTS) == 2
        assert stats.query_bytes(7) == {KIND_DIGESTS: 50}
        assert stats.query_ids() == [7]

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            StatsCollector().record(0, 1, 2, "x", -1)

    def test_bandwidth_per_node(self):
        stats = StatsCollector()
        stats.record(0, 1, 2, "x", 1000)
        stats.record(1, 1, 2, "x", 1000)
        # 2000 bytes over 2 cycles of 1s each = 8000 bits/s, split over 4 nodes.
        assert stats.average_bandwidth_bps(1.0, num_nodes=4) == pytest.approx(2000.0)

    def test_bandwidth_rejects_bad_cycle_duration(self):
        with pytest.raises(ValueError):
            StatsCollector().average_bandwidth_bps(0.0)

    def test_merge(self):
        a = StatsCollector()
        a.record(0, 1, 2, "x", 10)
        b = StatsCollector()
        b.record(0, 2, 1, "y", 20)
        a.merge(b)
        assert a.total_bytes() == 30
        assert a.bytes_by_kind() == {"x": 10, "y": 20}


class TestNetwork:
    def test_add_and_lookup(self):
        network = Network()
        node = RecordingNode(1)
        network.add_node(node)
        assert network.node(1) is node
        assert 1 in network
        assert len(network) == 1

    def test_duplicate_id_rejected(self):
        network = Network()
        network.add_node(RecordingNode(1))
        with pytest.raises(ValueError):
            network.add_node(RecordingNode(1))

    def test_unknown_node_raises(self):
        with pytest.raises(UnknownNodeError):
            Network().node(9)

    def test_churn_flags_and_hooks(self):
        network = Network()
        node = RecordingNode(1)
        network.add_node(node)
        network.depart([1])
        assert not network.is_online(1)
        assert node.departures == 1
        with pytest.raises(NodeOfflineError):
            network.require_online(1)
        assert network.try_contact(1) is None
        network.rejoin([1])
        assert network.is_online(1)
        assert node.joins == 1

    def test_try_contact_unknown_returns_none(self):
        assert Network().try_contact(42) is None

    def test_online_ids(self):
        network = Network()
        network.add_nodes([RecordingNode(1), RecordingNode(2), RecordingNode(3)])
        network.depart([2])
        assert network.online_ids() == [1, 3]
        assert network.node_ids() == [1, 2, 3]

    def test_account_goes_to_stats(self):
        network = Network()
        network.current_cycle = 3
        network.account(1, 2, "kind", 123, query_id=5)
        record = network.stats.records[0]
        assert (record.cycle, record.sender, record.receiver) == (3, 1, 2)
        assert record.query_id == 5


class TestEngine:
    def _build(self, count: int = 4):
        network = Network()
        nodes = [RecordingNode(i) for i in range(count)]
        network.add_nodes(nodes)
        return network, nodes, SimulationEngine(network, seed=1)

    def test_every_online_node_runs_each_cycle(self):
        network, nodes, engine = self._build()
        engine.run_cycles(3, phase=PHASE_LAZY)
        for node in nodes:
            assert [c for c, _ in node.executed] == [0, 1, 2]
        assert engine.cycles_run(PHASE_LAZY) == 3

    def test_phases_have_independent_counters(self):
        network, nodes, engine = self._build()
        engine.run_cycles(2, phase=PHASE_LAZY)
        engine.run_cycles(3, phase=PHASE_EAGER)
        assert engine.cycles_run(PHASE_LAZY) == 2
        assert engine.cycles_run(PHASE_EAGER) == 3
        assert engine.global_cycle == 5

    def test_offline_nodes_do_not_run(self):
        network, nodes, engine = self._build()
        network.depart([0])
        engine.run_cycles(2)
        assert nodes[0].executed == []
        assert nodes[1].executed != []

    def test_participants_filter(self):
        network, nodes, engine = self._build()
        engine.run_cycle(phase=PHASE_EAGER, participants=[1, 3])
        assert nodes[0].executed == []
        assert nodes[1].executed == [(0, PHASE_EAGER)]
        assert nodes[3].executed == [(0, PHASE_EAGER)]

    def test_scheduled_event_fires_once_at_right_cycle(self):
        network, nodes, engine = self._build()
        fired = []
        engine.schedule(
            ScheduledEvent(cycle=1, phase=PHASE_LAZY, action=lambda e: fired.append(e.global_cycle))
        )
        engine.run_cycles(3)
        assert len(fired) == 1

    def test_negative_event_cycle_rejected(self):
        _, _, engine = self._build()
        with pytest.raises(ValueError):
            engine.schedule(ScheduledEvent(cycle=-1, phase=PHASE_LAZY, action=lambda e: None))

    def test_hooks_run_around_each_cycle(self):
        network, nodes, engine = self._build()
        order = []
        engine.add_pre_cycle_hook(lambda e, c: order.append(("pre", c)))
        engine.add_post_cycle_hook(lambda e, c: order.append(("post", c)))
        engine.run_cycles(2)
        assert order == [("pre", 0), ("post", 0), ("pre", 1), ("post", 1)]

    def test_callback_gets_cycle_index(self):
        network, nodes, engine = self._build()
        seen = []
        engine.run_cycles(3, callback=seen.append)
        assert seen == [0, 1, 2]

    def test_negative_count_rejected(self):
        _, _, engine = self._build()
        with pytest.raises(ValueError):
            engine.run_cycles(-1)


class TestDirtyProfilePlumbing:
    """The per-cycle dirty set: marked during a cycle, flushed at its end."""

    def _build(self):
        network = Network()
        nodes = [RecordingNode(i) for i in range(3)]
        network.add_nodes(nodes)
        engine = SimulationEngine(network, seed=0)
        return network, engine

    def test_flush_fans_out_to_listeners_once(self):
        network, engine = self._build()
        seen = []
        network.add_profile_dirty_listener(seen.append)
        network.mark_profiles_dirty([1, 2])
        network.mark_profiles_dirty([2])
        flushed = network.flush_dirty_profiles()
        assert flushed == frozenset({1, 2})
        assert seen == [frozenset({1, 2})]
        # The set drained: a second flush is an empty no-op.
        assert network.flush_dirty_profiles() == frozenset()
        assert seen == [frozenset({1, 2})]

    def test_engine_flushes_at_cycle_boundary(self):
        network, engine = self._build()
        seen = []
        network.add_profile_dirty_listener(seen.append)
        engine.schedule(
            ScheduledEvent(
                cycle=0,
                phase="lazy",
                action=lambda _e: network.mark_profiles_dirty([0]),
            )
        )
        engine.run_cycle(phase="lazy")
        assert seen == [frozenset({0})]
        # Quiet cycles flush nothing.
        engine.run_cycle(phase="lazy")
        assert seen == [frozenset({0})]
