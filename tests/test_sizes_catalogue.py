"""Property tests tying ``gossip.sizes`` to the *full* message catalogue.

``total_bytes`` is the single pricing function behind all transport byte
accounting, so the contract is: every concrete
:class:`~repro.simulator.transport.Message` subclass has a price that is
defined, non-negative (strictly positive for non-empty payloads) and
deterministic.  The catalogue is enumerated from ``Message.__subclasses__``
-- adding a message type without teaching the size model about it fails
these tests loudly instead of silently costing 0 bytes on the wire.
"""

from __future__ import annotations

import pytest

from repro.data.models import UserProfile
from repro.data.queries import Query
from repro.gossip.digest import make_digest
from repro.gossip.sizes import (
    DIGEST_BYTES,
    TAGGING_ACTION_BYTES,
    USER_ID_BYTES,
    total_bytes,
)
from repro.p3q.query import PartialResult
from repro.simulator.transport import (
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
    VIEW_PERSONAL,
    VIEW_RANDOM,
)


def _profile(num_actions: int, user_id: int = 1) -> UserProfile:
    return UserProfile(user_id, [(item, item + 100) for item in range(num_actions)])


def _digests(count: int):
    return tuple(
        make_digest(_profile(3, user_id=uid), num_bits=256, num_hashes=3)
        for uid in range(count)
    )


_QUERY = Query(query_id=9, querier=1, tags=(100, 101))


def _partial(num_items: int, num_contributors: int) -> PartialResult:
    return PartialResult(
        query_id=9,
        sender=2,
        scores={item: 1.0 for item in range(num_items)},
        contributors=tuple(range(num_contributors)),
        cycle=1,
    )


#: type -> (builder(n), payload entry size in bytes, is_control).
#: ``builder(n)`` constructs an instance whose payload has ``n`` entries.
CATALOGUE = {
    DigestAdvertisement: (
        lambda n: DigestAdvertisement(digests=_digests(n), view=VIEW_RANDOM),
        DIGEST_BYTES + USER_ID_BYTES,
        False,
    ),
    CommonItemsRequest: (
        lambda n: CommonItemsRequest(subject_id=1, items=frozenset(range(n))),
        0,
        True,
    ),
    CommonItemsReply: (
        lambda n: CommonItemsReply(
            subject_id=1, actions=frozenset((item, item + 100) for item in range(n))
        ),
        TAGGING_ACTION_BYTES,
        False,
    ),
    FullProfileRequest: (lambda n: FullProfileRequest(subject_id=1), 0, True),
    FullProfilePush: (
        lambda n: FullProfilePush(subject_id=1, profile=_profile(n)),
        TAGGING_ACTION_BYTES,
        False,
    ),
    QueryForward: (
        lambda n: QueryForward(query=_QUERY, remaining=tuple(range(n)), cycle=1),
        USER_ID_BYTES,
        False,
    ),
    RemainingReturn: (
        lambda n: RemainingReturn(query_id=9, remaining=tuple(range(n))),
        USER_ID_BYTES,
        False,
    ),
    QueryResult: (
        lambda n: QueryResult(partial=_partial(n, 0)),
        20,  # ITEM_ID_BYTES + SCORE_BYTES per scored item
        False,
    ),
}


def _all_message_types():
    """Every concrete message type reachable from the catalogue base class.

    ``slots=True`` dataclasses leave their discarded pre-slots twin behind in
    ``__subclasses__()``, so only classes that are still the live attribute
    of their defining module count (which also ignores throwaway subclasses
    defined inside tests).
    """
    import sys

    found = set()
    stack = list(Message.__subclasses__())
    while stack:
        cls = stack.pop()
        module = sys.modules.get(cls.__module__)
        if module is not None and getattr(module, cls.__name__, None) is cls:
            found.add(cls)
        stack.extend(cls.__subclasses__())
    return found


class TestCatalogueCoverage:
    def test_every_message_type_has_a_builder(self):
        """A new Message subclass must be added to this catalogue (and to
        gossip.sizes) -- this assertion is the loud failure for step one."""
        missing = _all_message_types() - set(CATALOGUE)
        assert not missing, (
            f"message types missing from the test catalogue: "
            f"{sorted(cls.__name__ for cls in missing)} -- add builders here "
            "and a sizer in repro.gossip.sizes"
        )

    def test_unpriced_message_type_fails_loudly(self):
        """total_bytes refuses unknown message types instead of pricing 0."""

        class Unpriced(Message):
            pass

        with pytest.raises(TypeError, match="Unpriced"):
            total_bytes(Unpriced())


@pytest.mark.parametrize("mtype", sorted(CATALOGUE, key=lambda cls: cls.__name__))
class TestCataloguePricing:
    def test_defined_and_non_negative(self, mtype):
        builder, _entry, _control = CATALOGUE[mtype]
        for count in (0, 1, 5):
            assert total_bytes(builder(count)) >= 0

    def test_deterministic(self, mtype):
        builder, _entry, _control = CATALOGUE[mtype]
        message = builder(4)
        assert total_bytes(message) == total_bytes(message)
        # Two separately-built equal payloads price identically.
        assert total_bytes(builder(4)) == total_bytes(builder(4))

    def test_positive_and_linear_for_payloads(self, mtype):
        builder, entry, control = CATALOGUE[mtype]
        if control:
            for count in (0, 3, 7):
                assert total_bytes(builder(count)) == 0
            return
        base = total_bytes(builder(0))
        for count in (1, 3, 7):
            priced = total_bytes(builder(count))
            assert priced > 0
            assert priced == base + count * entry

    def test_accounting_flags_consistent(self, mtype):
        """Control messages carry no kind; priced payloads carry one."""
        builder, _entry, control = CATALOGUE[mtype]
        message = builder(2)
        if control:
            assert message.kind is None
        else:
            assert message.kind is not None
            assert message.accountable


class TestFailureReplies:
    def test_none_payloads_price_zero_and_are_unaccountable(self):
        reply = CommonItemsReply(subject_id=1, actions=None)
        assert total_bytes(reply) == 0
        assert not reply.accountable
        push = FullProfilePush(subject_id=1, profile=None)
        assert total_bytes(push) == 0
        assert not push.accountable

    def test_personal_view_advertisement_kind(self):
        message = DigestAdvertisement(digests=(), view=VIEW_PERSONAL)
        assert message.kind == "personal_digests"
