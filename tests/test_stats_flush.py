"""StatsCollector ``flush_every``: bounded memory, exact aggregates.

The contract: folding the raw row buffer into the aggregates at cycle
boundaries must leave every aggregate view (bytes/messages by kind, cycle,
node and query, per-query receivers, derived bandwidth) exactly as if no
flush had happened; only the materialized ``records`` list degrades to the
retained rows.
"""

from __future__ import annotations

import pytest

from repro.data import SyntheticConfig, generate_dataset
from repro.data.queries import QueryWorkloadGenerator
from repro.p3q import P3QConfig, P3QSimulation
from repro.simulator.stats import StatsCollector


def _record_burst(stats: StatsCollector) -> None:
    for cycle in range(4):
        for sender in range(5):
            stats.record(cycle, sender, (sender + 1) % 5, "kind_a", 10)
            stats.record(cycle, sender, (sender + 2) % 5, "kind_b", 7, query_id=cycle % 2)


class TestFlushSemantics:
    def test_aggregates_identical_with_and_without_flush(self):
        plain = StatsCollector()
        flushed = StatsCollector(flush_every=1)
        _record_burst(plain)
        _record_burst(flushed)
        flushed.flush()
        assert plain.bytes_by_kind() == flushed.bytes_by_kind()
        assert plain.bytes_by_cycle() == flushed.bytes_by_cycle()
        assert plain.bytes_by_node() == flushed.bytes_by_node()
        assert plain.total_messages() == flushed.total_messages()
        assert plain.query_ids() == flushed.query_ids()
        for query_id in plain.query_ids():
            assert plain.query_bytes(query_id) == flushed.query_bytes(query_id)
            assert plain.query_messages(query_id) == flushed.query_messages(query_id)

    def test_query_receivers_exact_across_flushes(self):
        plain = StatsCollector()
        flushed = StatsCollector(flush_every=1)
        _record_burst(plain)
        _record_burst(flushed)
        flushed.flush()
        # More traffic after the flush: both epochs must contribute.
        plain.record(9, 1, 4, "kind_b", 7, query_id=0)
        flushed.record(9, 1, 4, "kind_b", 7, query_id=0)
        assert plain.query_receivers(0, "kind_b") == flushed.query_receivers(0, "kind_b")

    def test_flush_drops_rows(self):
        stats = StatsCollector(flush_every=1)
        _record_burst(stats)
        assert len(stats.records) == 40
        dropped = stats.flush()
        assert dropped == 40
        assert stats.records == []
        # Aggregates survive the drop.
        assert stats.total_messages() == 40

    def test_maybe_flush_respects_period(self):
        stats = StatsCollector(flush_every=3)
        stats.record(0, 1, 2, "kind_a", 1)
        assert stats.maybe_flush() is False
        assert stats.maybe_flush() is False
        assert stats.maybe_flush() is True
        assert stats.records == []

    def test_no_flush_when_unset(self):
        stats = StatsCollector()
        stats.record(0, 1, 2, "kind_a", 1)
        assert stats.maybe_flush() is False
        assert len(stats.records) == 1

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            StatsCollector(flush_every=0)

    def test_merge_with_flushed_sides_is_exact(self):
        a = StatsCollector(flush_every=1)
        b = StatsCollector()
        _record_burst(a)
        a.flush()
        _record_burst(b)
        reference = StatsCollector()
        _record_burst(reference)
        _record_burst(reference)
        a.merge(b)
        assert a.bytes_by_kind() == reference.bytes_by_kind()
        assert a.total_messages() == reference.total_messages()
        assert a.query_receivers(0, "kind_b") == reference.query_receivers(0, "kind_b")


class TestSimulationFlushEquivalence:
    def test_flushed_simulation_matches_unflushed_aggregates(self):
        """End to end: a flushed run reports identical traffic aggregates."""

        def run(flush_every):
            dataset = generate_dataset(
                SyntheticConfig(
                    num_users=30,
                    num_items=200,
                    num_tags=60,
                    num_communities=3,
                    mean_actions_per_user=18,
                    seed=4,
                )
            )
            sim = P3QSimulation(
                dataset,
                P3QConfig(
                    network_size=8,
                    storage=3,
                    seed=2,
                    digest_bits=512,
                    digest_hashes=3,
                    stats_flush_every=flush_every,
                ),
            )
            sim.bootstrap_random_views()
            sim.run_lazy(4)
            workload = QueryWorkloadGenerator(sim.dataset, seed=2)
            sim.issue_queries([workload.query_for(user_id=uid) for uid in sim.dataset.user_ids[:3]])
            sim.run_eager(6, stop_when_idle=False)
            return sim

        plain = run(None)
        flushed = run(1)
        assert plain.stats.bytes_by_kind() == flushed.stats.bytes_by_kind()
        assert plain.stats.bytes_by_cycle() == flushed.stats.bytes_by_cycle()
        assert plain.stats.total_messages() == flushed.stats.total_messages()
        for query_id in plain.stats.query_ids():
            assert plain.users_reached(query_id) == flushed.users_reached(query_id)
        # The flushed run retained at most one cycle of rows.
        assert len(flushed.stats.records) < len(plain.stats.records)
