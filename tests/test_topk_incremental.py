"""Tests for the incremental (asynchronous) NRA of Algorithm 4."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.topk.exact import exact_top_k, merge_score_maps
from repro.topk.incremental import IncrementalNRA

score_map = st.dictionaries(
    keys=st.integers(0, 25),
    values=st.floats(min_value=0.5, max_value=9.0, allow_nan=False),
    max_size=12,
)
batches = st.lists(st.lists(score_map, max_size=3), min_size=1, max_size=5)


class TestBasics:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            IncrementalNRA(0)

    def test_single_list_single_cycle(self):
        nra = IncrementalNRA(2)
        top = nra.process_cycle([{1: 5.0, 2: 3.0, 3: 1.0}])
        assert [item for item, _ in top] == [1, 2]

    def test_duplicate_list_id_rejected(self):
        nra = IncrementalNRA(1)
        nra.add_list({1: 1.0}, list_id=7)
        with pytest.raises(ValueError):
            nra.add_list({2: 1.0}, list_id=7)

    def test_empty_cycle_keeps_previous_results(self):
        nra = IncrementalNRA(1)
        first = nra.process_cycle([{1: 5.0}])
        second = nra.process_cycle([])
        assert first == second

    def test_results_incorporate_later_lists(self):
        nra = IncrementalNRA(1)
        nra.process_cycle([{1: 5.0}])
        top = nra.process_cycle([{2: 7.0}])
        assert top[0][0] == 2

    def test_finalize_exhausts_everything(self):
        nra = IncrementalNRA(3)
        nra.process_cycle([{i: float(i) for i in range(1, 10)}])
        final = nra.finalize()
        assert [item for item, _ in final] == [9, 8, 7]
        assert nra.sequential_accesses >= 9

    def test_counters(self):
        nra = IncrementalNRA(2)
        nra.process_cycle([{1: 1.0}, {2: 2.0}])
        assert nra.num_lists == 2
        assert nra.num_candidates >= 1

    def test_scores_are_summed_across_lists(self):
        nra = IncrementalNRA(1)
        nra.process_cycle([{1: 2.0, 2: 5.0}])
        top = nra.process_cycle([{1: 4.0}])
        # item 1 now totals 6 and must beat item 2's 5.
        assert top[0] == (1, 6.0)


class TestAgainstOracle:
    @given(batches, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_finalize_matches_exact_oracle(self, cycles, k):
        """After finalize, the result equals the exact top-k over all lists,
        no matter how the lists were batched across cycles."""
        nra = IncrementalNRA(k)
        all_maps = []
        for batch in cycles:
            nra.process_cycle(batch)
            all_maps.extend(batch)
        final = nra.finalize()
        expected = exact_top_k(all_maps, k=k)
        assert [item for item, _ in final] == [item for item, _ in expected]
        assert [score for _, score in final] == pytest.approx(
            [score for _, score in expected]
        )

    @given(batches, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_intermediate_results_have_valid_scores(self, cycles, k):
        """Per-cycle worst-case scores never exceed the true final scores."""
        nra = IncrementalNRA(k)
        all_maps = []
        for batch in cycles:
            all_maps.extend(batch)
            top = nra.process_cycle(batch)
            true_scores = merge_score_maps(all_maps)
            for item, worst in top:
                assert worst <= true_scores.get(item, 0.0) + 1e-9

    @given(st.lists(score_map, min_size=1, max_size=6), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_batching_does_not_change_the_final_answer(self, maps, k):
        """Delivering all lists at once or one per cycle gives the same result.

        Scores are compared approximately: the two schedules observe the same
        per-list scores but may sum them in a different order.
        """
        together = IncrementalNRA(k)
        together.process_cycle(maps)
        one_by_one = IncrementalNRA(k)
        for scores in maps:
            one_by_one.process_cycle([scores])
        result_a = together.finalize()
        result_b = one_by_one.finalize()
        assert [item for item, _ in result_a] == [item for item, _ in result_b]
        assert [score for _, score in result_a] == pytest.approx(
            [score for _, score in result_b]
        )

    @given(st.lists(score_map, min_size=1, max_size=5), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_confident_early_stop_is_still_a_valid_topk(self, maps, k):
        """Even without finalize, every returned item's exact score is at
        least as large as the exact score of any item it displaced (up to
        ties)."""
        nra = IncrementalNRA(k)
        top = nra.process_cycle(maps)
        true_scores = merge_score_maps(maps)
        if len(true_scores) <= k:
            return
        returned = {item for item, _ in top}
        kth_true = sorted(true_scores.values(), reverse=True)[k - 1]
        for item, score in true_scores.items():
            if score > kth_true + 1e-9:
                assert item in returned
