"""Tests for the classical NRA implementation and the exact oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.topk.exact import exact_top_k, merge_score_maps, top_k_items
from repro.topk.heap import CandidateHeap
from repro.topk.nra import NRAResult, RankedList, nra_top_k

# Strategy: a handful of score maps over a small item universe.
score_maps = st.lists(
    st.dictionaries(
        keys=st.integers(0, 20),
        values=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        max_size=10,
    ),
    min_size=1,
    max_size=6,
)


class TestRankedList:
    def test_from_scores_sorts_descending_and_drops_zeros(self):
        ranked = RankedList.from_scores(0, {1: 2.0, 2: 5.0, 3: 0.0})
        assert ranked.entries == ((2, 5.0), (1, 2.0))

    def test_rejects_unsorted_entries(self):
        with pytest.raises(ValueError):
            RankedList(list_id=0, entries=((1, 1.0), (2, 3.0)))

    def test_len(self):
        assert len(RankedList.from_scores(0, {1: 1.0, 2: 2.0})) == 2


class TestExactOracle:
    def test_merge_sums_scores(self):
        merged = merge_score_maps([{1: 2.0, 2: 1.0}, {1: 3.0}])
        assert merged == {1: 5.0, 2: 1.0}

    def test_exact_top_k_orders_by_score_then_item(self):
        result = exact_top_k([{1: 2.0, 2: 2.0, 3: 5.0}], k=2)
        assert result == [(3, 5.0), (1, 2.0)]

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            exact_top_k([{1: 1.0}], k=0)

    def test_top_k_items_returns_ids(self):
        assert top_k_items([{1: 1.0, 2: 3.0}], k=1) == [2]


class TestCandidateHeap:
    def test_observe_and_rank(self):
        heap = CandidateHeap()
        heap.observe(1, 0, 3.0)
        heap.observe(2, 0, 5.0)
        heap.observe(1, 1, 4.0)
        ranked = heap.ranked({0: 0.0, 1: 0.0})
        assert ranked[0][0] == 1  # 3 + 4 = 7 beats 5
        assert ranked[0][1] == 7.0

    def test_best_case_uses_last_seen_bounds(self):
        heap = CandidateHeap()
        heap.observe(1, 0, 3.0)
        ranked = heap.ranked({0: 3.0, 1: 2.0})
        # Item 1 unseen in list 1: best case adds the bound 2.0.
        assert ranked[0][2] == 5.0

    def test_is_confident_blocks_on_unseen_threshold(self):
        heap = CandidateHeap()
        heap.observe(1, 0, 1.0)
        # Unseen objects could reach 1.0 + 5.0, so we cannot be confident.
        assert not heap.is_confident(1, {0: 1.0, 1: 5.0})
        assert heap.is_confident(1, {0: 0.0, 1: 0.0})

    def test_is_confident_requires_k_candidates(self):
        heap = CandidateHeap()
        heap.observe(1, 0, 1.0)
        assert not heap.is_confident(2, {0: 0.0})


class TestNRA:
    def test_simple_merge(self):
        lists = [
            RankedList.from_scores(0, {1: 5.0, 2: 3.0, 3: 1.0}),
            RankedList.from_scores(1, {2: 4.0, 4: 2.0}),
        ]
        result = nra_top_k(lists, k=2)
        assert result.items == [2, 1]

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            nra_top_k([], k=0)

    def test_empty_lists_return_empty_result(self):
        result = nra_top_k([RankedList.from_scores(0, {})], k=3)
        assert result.items == []
        assert result.sequential_accesses == 0

    def test_reports_accesses_and_depth(self):
        lists = [RankedList.from_scores(0, {i: float(10 - i) for i in range(10)})]
        result = nra_top_k(lists, k=1)
        assert isinstance(result, NRAResult)
        assert result.sequential_accesses >= 1
        assert result.depth >= 1

    def test_early_termination_reads_less_than_everything(self):
        # One list with a huge leading score: NRA should stop early.
        scores = {0: 100.0}
        scores.update({i: 1.0 for i in range(1, 50)})
        other = {i: 0.5 for i in range(100, 150)}
        result = nra_top_k(
            [RankedList.from_scores(0, scores), RankedList.from_scores(1, other)], k=1
        )
        assert result.items == [0]
        total_entries = len(scores) + len(other)
        assert result.sequential_accesses < total_entries

    @given(score_maps, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_nra_matches_exact_oracle(self, maps, k):
        """The NRA result is a valid top-k: the multiset of *true* scores of
        the returned items equals the top-k of the true score distribution.

        NRA terminates as soon as set membership is certain, so the scores it
        reports are lower bounds -- correctness is therefore checked on the
        exact scores of the returned items, not on the reported bounds.
        """
        lists = [RankedList.from_scores(i, scores) for i, scores in enumerate(maps)]
        result = nra_top_k(lists, k=k)
        expected = exact_top_k(maps, k=k)
        merged = merge_score_maps(maps)
        assert len(result.top_k) == len(expected)
        got_true_scores = sorted(merged[item] for item in result.items)
        expected_scores = sorted(score for _, score in expected)
        assert got_true_scores == pytest.approx(expected_scores)
        # Items with strictly higher scores than the k-th must all be present.
        if expected:
            kth = expected[-1][1]
            must_have = {item for item, score in merged.items() if score > kth + 1e-9}
            assert must_have <= set(result.items)
