"""Unit tests for the message-passing transport layer."""

from __future__ import annotations

import pytest

from repro.gossip.sizes import (
    DIGEST_BYTES,
    TAGGING_ACTION_BYTES,
    USER_ID_BYTES,
    digest_message_size,
    partial_result_size,
    remaining_list_size,
    tagging_actions_size,
    total_bytes,
)
from repro.p3q.config import P3QConfig
from repro.p3q.node import P3QNode
from repro.p3q.query import PartialResult
from repro.simulator.network import Network
from repro.simulator.stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_PARTIAL_RESULT,
    KIND_RANDOM_VIEW,
)
from repro.simulator.transport import (
    DEFERRED,
    DELIVERED,
    DROPPED,
    OP_DRAIN,
    OP_REPLY,
    OP_REQUEST,
    OP_SEND,
    REPLY_DROPPED,
    UNREACHABLE,
    VIEW_PERSONAL,
    VIEW_RANDOM,
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    DirectTransport,
    FullProfilePush,
    FullProfileRequest,
    LatencyTransport,
    LossyTransport,
    QueryResult,
    RemainingReturn,
    make_transport,
)


@pytest.fixture()
def pair(tiny_dataset):
    """Two wired nodes plus their network (direct transport)."""
    config = P3QConfig(
        network_size=4, storage=2, random_view_size=3, digest_bits=1_024, digest_hashes=4, seed=3
    )
    network = Network()
    nodes = {}
    for profile in tiny_dataset.profiles():
        node = P3QNode(profile, config)
        nodes[node.node_id] = node
        network.add_node(node)
    return network, nodes


def _digest_ad(node, view=VIEW_RANDOM):
    return DigestAdvertisement(digests=(node.own_digest(),), view=view)


class TestMessageCatalogue:
    def test_messages_are_frozen(self, pair):
        _, nodes = pair
        message = _digest_ad(nodes[0])
        with pytest.raises(AttributeError):
            message.view = VIEW_PERSONAL

    def test_advertisement_kind_follows_view(self, pair):
        _, nodes = pair
        assert _digest_ad(nodes[0], VIEW_RANDOM).kind == KIND_RANDOM_VIEW
        assert _digest_ad(nodes[0], VIEW_PERSONAL).kind == KIND_DIGESTS

    def test_control_messages_have_no_kind(self):
        assert CommonItemsRequest(subject_id=1, items=frozenset({2})).kind is None
        assert FullProfileRequest(subject_id=1).kind is None

    def test_none_payload_replies_are_not_accountable(self):
        assert not CommonItemsReply(subject_id=1, actions=None).accountable
        assert not FullProfilePush(subject_id=1, profile=None).accountable
        assert CommonItemsReply(subject_id=1, actions=frozenset()).accountable


class TestTotalBytes:
    def test_sizes_share_the_paper_cost_model(self, pair, tiny_dataset):
        _, nodes = pair
        ad = DigestAdvertisement(digests=(nodes[0].own_digest(), nodes[1].own_digest()), view=VIEW_RANDOM)
        assert total_bytes(ad) == digest_message_size(2) == 2 * (DIGEST_BYTES + USER_ID_BYTES)

        profile = tiny_dataset.profile(0)
        push = FullProfilePush(subject_id=0, profile=profile)
        assert total_bytes(push) == tagging_actions_size(len(profile))

        actions = frozenset(profile.actions)
        reply = CommonItemsReply(subject_id=0, actions=actions)
        assert total_bytes(reply) == len(actions) * TAGGING_ACTION_BYTES

        partial = PartialResult(query_id=1, sender=0, scores={1: 2.0, 2: 1.0}, contributors=(0, 1), cycle=0)
        assert total_bytes(QueryResult(partial=partial)) == partial_result_size(2, 2)

        ret = RemainingReturn(query_id=1, remaining=(1, 2, 3))
        assert total_bytes(ret) == remaining_list_size(3)

    def test_control_and_failure_messages_are_free(self):
        assert total_bytes(CommonItemsRequest(subject_id=1, items=frozenset({1}))) == 0
        assert total_bytes(FullProfileRequest(subject_id=1)) == 0
        assert total_bytes(CommonItemsReply(subject_id=1, actions=None)) == 0
        assert total_bytes(FullProfilePush(subject_id=1, profile=None)) == 0

    def test_unknown_message_type_rejected(self):
        with pytest.raises(TypeError):
            total_bytes(object())


class TestDirectTransport:
    def test_request_round_trip_and_accounting(self, pair):
        network, nodes = pair
        items = frozenset(nodes[0].profile.items)
        dispatch = network.transport.request(
            0, 1, CommonItemsRequest(subject_id=1, items=items)
        )
        assert dispatch.status == DELIVERED
        assert dispatch.reply is not None
        assert dispatch.reply.actions  # users 0 and 1 share items
        # One accounted message: the reply (requests are free control traffic).
        assert network.stats.total_messages() == 1
        assert network.stats.total_bytes(KIND_COMMON_ITEMS) == total_bytes(dispatch.reply)
        record = network.stats.records[0]
        assert (record.sender, record.receiver) == (1, 0)

    def test_offline_receiver_is_unreachable(self, pair):
        network, nodes = pair
        network.depart([1])
        dispatch = network.transport.request(0, 1, FullProfileRequest(subject_id=1))
        assert dispatch.status == UNREACHABLE
        assert network.stats.total_messages() == 0

    def test_receiver_without_handler_is_unreachable(self, pair):
        network, _ = pair
        from repro.simulator.node import Node

        network.add_node(Node(99))
        dispatch = network.transport.request(0, 99, FullProfileRequest(subject_id=0))
        assert dispatch.status == UNREACHABLE

    def test_account_flag_suppresses_recording(self, pair):
        network, nodes = pair
        network.transport.request(
            0, 1, CommonItemsRequest(subject_id=1, items=frozenset(nodes[0].profile.items)),
            account=False,
        )
        assert network.stats.total_messages() == 0

    def test_one_way_send_delivers_partial_results(self, pair):
        network, nodes = pair
        from repro.data.queries import Query

        query = Query(query_id=7, querier=0, tags=(100,))
        session = nodes[0].issue_query(query)
        partial = PartialResult(query_id=7, sender=1, scores={5: 1.0}, contributors=(1,), cycle=1)
        status = network.transport.send(1, 0, QueryResult(partial=partial), query_id=7)
        assert status == DELIVERED
        assert network.stats.query_bytes(7).get(KIND_PARTIAL_RESULT, 0) > 0
        session.close_cycle(1)
        assert 1 in session.profiles_used

    def test_pending_count_is_zero(self, pair):
        network, _ = pair
        assert network.transport.pending_count() == 0
        assert network.transport.drain() == 0


class TestLossyTransport:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossyTransport(loss_rate=1.5)
        with pytest.raises(ValueError):
            LatencyTransport(delay_cycles=-1)
        with pytest.raises(ValueError):
            make_transport("bogus")

    @pytest.mark.parametrize("rate", [-0.01, 1.01, float("nan"), float("inf"), -float("inf")])
    def test_out_of_range_and_non_finite_loss_rates_rejected(self, rate):
        with pytest.raises(ValueError, match="loss_rate"):
            LossyTransport(loss_rate=rate)
        with pytest.raises(ValueError, match="loss_rate"):
            LatencyTransport(delay_cycles=1, loss_rate=rate)

    @pytest.mark.parametrize("rate", ["0.5", None, True, [0.5]])
    def test_non_numeric_loss_rates_rejected(self, rate):
        with pytest.raises(TypeError, match="loss_rate"):
            LossyTransport(loss_rate=rate)

    @pytest.mark.parametrize("delay", [-1, -100])
    def test_negative_delays_rejected(self, delay):
        with pytest.raises(ValueError, match="delay_cycles"):
            LatencyTransport(delay_cycles=delay)

    @pytest.mark.parametrize("delay", [1.5, 2.0, "3", None, True])
    def test_non_integer_delays_rejected(self, delay):
        """A float delay would only explode later inside randint; the
        constructor is where the error belongs."""
        with pytest.raises(TypeError, match="delay_cycles"):
            LatencyTransport(delay_cycles=delay)

    def test_boundary_rates_accepted(self):
        assert LossyTransport(loss_rate=0.0).loss_rate == 0.0
        assert LossyTransport(loss_rate=1.0).loss_rate == 1.0
        assert LossyTransport(loss_rate=0).loss_rate == 0.0  # int zero coerced
        assert LatencyTransport(delay_cycles=0).delay_cycles == 0

    def test_full_loss_drops_everything(self, pair, tiny_dataset):
        config = P3QConfig(
            network_size=4, storage=2, random_view_size=3,
            digest_bits=1_024, digest_hashes=4, seed=3,
        )
        network = Network(transport=LossyTransport(loss_rate=1.0, seed=1))
        nodes = {}
        for profile in tiny_dataset.profiles():
            node = P3QNode(profile, config)
            nodes[node.node_id] = node
            network.add_node(node)
        dispatch = network.transport.request(
            0, 1, CommonItemsRequest(subject_id=1, items=frozenset(nodes[0].profile.items))
        )
        assert dispatch.status == DROPPED
        assert dispatch.reply is None

    def test_drop_stream_is_deterministic(self):
        a = LossyTransport(loss_rate=0.5, seed=9)
        b = LossyTransport(loss_rate=0.5, seed=9)
        message = FullProfileRequest(subject_id=1)
        rolls_a = [a._roll_drop(message, 0, 1) for _ in range(50)]
        rolls_b = [b._roll_drop(message, 0, 1) for _ in range(50)]
        assert rolls_a == rolls_b
        assert any(rolls_a) and not all(rolls_a)

    def test_zero_rate_consumes_no_randomness(self):
        transport = LossyTransport(loss_rate=0.0, seed=9)
        state = transport.drop_rng.getstate()
        assert not transport._roll_drop(FullProfileRequest(subject_id=1), 0, 1)
        assert transport.drop_rng.getstate() == state

    def test_dropped_reply_is_distinguished_from_dropped_request(self, tiny_dataset):
        """A lost reply must not look like a lost request: the receiver's
        side effects already happened, so callers must not retry."""

        class ScriptedDropTransport(LossyTransport):
            def __init__(self, script):
                super().__init__(loss_rate=0.5, seed=0)  # rate only enables rolling
                self.script = list(script)

            def _roll_drop(self, message, sender, receiver):
                return self.script.pop(0) if self.script else False

        config = P3QConfig(
            network_size=4, storage=2, random_view_size=3,
            digest_bits=1_024, digest_hashes=4, seed=3,
        )
        # Script: request leg delivered (False), reply leg dropped (True).
        network = Network(transport=ScriptedDropTransport([False, True]))
        nodes = {}
        for profile in tiny_dataset.profiles():
            node = P3QNode(profile, config)
            nodes[node.node_id] = node
            network.add_node(node)
        items = frozenset(nodes[0].profile.items)
        dispatch = network.transport.request(
            0, 1, CommonItemsRequest(subject_id=1, items=items)
        )
        assert dispatch.status == REPLY_DROPPED
        assert dispatch.reply is None

    def test_reply_dropped_forward_hands_off_the_remaining_list(self, synthetic_dataset):
        """Eager semantics: when the destination processed the forward but
        the return was lost, the initiator must NOT keep (and re-forward)
        the list -- the destination already took its share."""
        from repro.data.queries import QueryWorkloadGenerator
        from repro.p3q.protocol import P3QSimulation

        class ReplyDropTransport(LossyTransport):
            """Drops exactly the replies to QueryForward messages."""

            def __init__(self):
                super().__init__(loss_rate=0.5, seed=0)

            def _roll_drop(self, message, sender, receiver):
                return isinstance(message, RemainingReturn)

        config = P3QConfig(
            network_size=20, storage=5, random_view_size=5,
            digest_bits=2_048, digest_hashes=5, seed=5,
        )
        simulation = P3QSimulation(synthetic_dataset.copy(), config)
        # Swap the transport for the scripted one (attach rebinds it).
        simulation.network.transport = ReplyDropTransport()
        simulation.network.transport.attach(simulation.network)
        simulation.warm_start()
        query = QueryWorkloadGenerator(simulation.dataset, seed=9).query_for(
            simulation.dataset.user_ids[0]
        )
        node = simulation.nodes[query.querier]
        session = node.issue_query(query)
        if not session.remaining:
            pytest.skip("querier stores her whole network at this storage budget")
        before = list(session.remaining)
        returned = simulation.eager.gossip_query(
            node, query, before, simulation.network, cycle=1
        )
        # The destination processed the list (its kept share and partial
        # result happened), the return was dropped: responsibility is NOT
        # retained by the initiator.
        assert returned == []


class TestLatencyTransport:
    def _network(self, tiny_dataset, transport):
        config = P3QConfig(
            network_size=4, storage=2, random_view_size=3,
            digest_bits=1_024, digest_hashes=4, seed=3,
        )
        network = Network(transport=transport)
        nodes = {}
        for profile in tiny_dataset.profiles():
            node = P3QNode(profile, config)
            nodes[node.node_id] = node
            network.add_node(node)
        return network, nodes

    def test_deferrable_messages_queue_and_drain(self, tiny_dataset):
        transport = LatencyTransport(delay_cycles=3, seed=2)
        network, nodes = self._network(tiny_dataset, transport)
        # Try until a non-zero delay is rolled (delays are uniform on 0..3).
        deferred = None
        for _ in range(16):
            dispatch = network.transport.request(
                0, 1, _digest_ad(nodes[0], VIEW_RANDOM)
            )
            if dispatch.status == DEFERRED:
                deferred = dispatch
                break
        assert deferred is not None
        assert transport.pending_count() > 0
        # Advancing the clock past the max delay flushes the queue; the
        # deferred exchange's reply routes back to node 0 asynchronously.
        network.current_cycle += 4
        assert transport.drain() >= 1
        # The partner processed the advertisement when it drained (her view
        # was empty, so the initiator's digest must now be in it).
        assert 0 in nodes[1].random_view

    def test_control_requests_are_never_deferred(self, tiny_dataset):
        transport = LatencyTransport(delay_cycles=5, seed=2)
        network, nodes = self._network(tiny_dataset, transport)
        for _ in range(20):
            dispatch = network.transport.request(
                0, 1, CommonItemsRequest(subject_id=1, items=frozenset(nodes[0].profile.items))
            )
            assert dispatch.status == DELIVERED

    def test_delay_stream_is_deterministic(self):
        a = LatencyTransport(delay_cycles=4, seed=11)
        b = LatencyTransport(delay_cycles=4, seed=11)
        message = RemainingReturn(query_id=1, remaining=(1,))
        assert [a._roll_delay(message, 0, 1) for _ in range(50)] == [
            b._roll_delay(message, 0, 1) for _ in range(50)
        ]

    def test_message_to_departed_node_is_lost(self, tiny_dataset):
        transport = LatencyTransport(delay_cycles=2, seed=4)
        network, nodes = self._network(tiny_dataset, transport)
        deferred = False
        for _ in range(16):
            dispatch = network.transport.request(0, 1, _digest_ad(nodes[0]))
            if dispatch.status == DEFERRED:
                deferred = True
                break
        assert deferred
        network.depart([1])
        network.current_cycle += 3
        assert transport.drain() == 0  # receiver gone: message lost silently
        assert transport.pending_count() == 0


class TestObservers:
    """WireEvent observation: passive, complete, zero-cost when absent."""

    def test_round_trip_emits_request_and_reply_events(self, pair):
        network, nodes = pair
        events = []
        network.transport.add_observer(events.append)
        dispatch = network.transport.request(
            0, 1, CommonItemsRequest(subject_id=1, items=frozenset(nodes[0].profile.items))
        )
        assert dispatch.status == DELIVERED
        assert [(e.op, e.status, e.sender, e.receiver) for e in events] == [
            (OP_REQUEST, DELIVERED, 0, 1),
            (OP_REPLY, DELIVERED, 1, 0),
        ]
        assert all(e.accounted for e in events)

    def test_unreachable_send_is_observed_unaccounted(self, pair):
        network, _nodes = pair
        events = []
        network.transport.add_observer(events.append)
        network.depart([1])
        status = network.transport.send(0, 1, RemainingReturn(query_id=1, remaining=(2,)))
        assert status == UNREACHABLE
        assert len(events) == 1
        assert events[0].op == OP_SEND
        assert events[0].status == UNREACHABLE
        assert events[0].accounted is False

    def test_observers_can_be_removed(self, pair):
        network, nodes = pair
        events = []
        network.transport.add_observer(events.append)
        network.transport.remove_observer(events.append)
        network.transport.send(0, 1, RemainingReturn(query_id=1, remaining=(2,)))
        assert events == []

    def test_drop_and_drain_events_on_stochastic_transports(self, tiny_dataset):
        config = P3QConfig(
            network_size=4, storage=2, random_view_size=3,
            digest_bits=1_024, digest_hashes=4, seed=3,
            transport="lossy", loss_rate=1.0,
        )
        network = Network(transport=LossyTransport(loss_rate=1.0, seed=1))
        nodes = {}
        for profile in tiny_dataset.profiles():
            node = P3QNode(profile, config)
            nodes[node.node_id] = node
            network.add_node(node)
        events = []
        network.transport.add_observer(events.append)
        network.transport.request(0, 1, _digest_ad(nodes[0], VIEW_RANDOM))
        assert events[-1].status == DROPPED
        assert events[-1].accounted  # a lost message still cost its sender

    def test_deferred_and_drained_events(self, tiny_dataset):
        config = P3QConfig(
            network_size=4, storage=2, random_view_size=3,
            digest_bits=1_024, digest_hashes=4, seed=3,
            transport="latency", delay_cycles=3,
        )
        transport = LatencyTransport(delay_cycles=3, seed=2)
        network = Network(transport=transport)
        nodes = {}
        for profile in tiny_dataset.profiles():
            node = P3QNode(profile, config)
            nodes[node.node_id] = node
            network.add_node(node)
        events = []
        transport.add_observer(events.append)
        for _ in range(16):
            dispatch = network.transport.request(0, 1, _digest_ad(nodes[0], VIEW_RANDOM))
            if dispatch.status == DEFERRED:
                break
        assert any(e.op == OP_REQUEST and e.status == DEFERRED for e in events)
        network.current_cycle += 4
        transport.drain()
        assert any(e.op == OP_DRAIN and e.status == DELIVERED for e in events)


class TestMakeTransport:
    def test_builds_each_flavour(self):
        assert isinstance(make_transport("direct"), DirectTransport)
        lossy = make_transport("lossy", loss_rate=0.3, seed=5)
        assert isinstance(lossy, LossyTransport) and lossy.loss_rate == 0.3
        latency = make_transport("latency", delay_cycles=2, loss_rate=0.1, seed=5)
        assert isinstance(latency, LatencyTransport)
        assert latency.delay_cycles == 2 and latency.loss_rate == 0.1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            P3QConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            P3QConfig(loss_rate=2.0)
        with pytest.raises(ValueError):
            P3QConfig(delay_cycles=-1)
        config = P3QConfig().with_transport("latency", loss_rate=0.1, delay_cycles=3)
        assert (config.transport, config.loss_rate, config.delay_cycles) == ("latency", 0.1, 3)

    def test_ignored_conditions_rejected(self):
        """Conditions the named transport would silently ignore are errors."""
        with pytest.raises(ValueError, match="direct"):
            make_transport("direct", loss_rate=0.2)
        with pytest.raises(ValueError, match="direct"):
            make_transport("direct", delay_cycles=1)
        with pytest.raises(ValueError, match="lossy"):
            make_transport("lossy", loss_rate=0.2, delay_cycles=1)
        with pytest.raises(ValueError, match="direct"):
            P3QConfig(transport="direct", loss_rate=0.2)
        with pytest.raises(ValueError, match="lossy"):
            P3QConfig(transport="lossy", delay_cycles=2)
        # Zero-valued conditions remain fine on every transport.
        assert isinstance(make_transport("direct"), DirectTransport)
        assert isinstance(make_transport("lossy", loss_rate=0.0), LossyTransport)
