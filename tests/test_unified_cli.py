"""Tests for the unified ``python -m repro`` CLI and the deprecated shims."""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import SUBCOMMANDS, add_common_options, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_module(args, timeout=120):
    """Run ``python <args>`` from the repo root with src/ importable."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *args],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestDispatch:
    def test_no_arguments_prints_usage_and_fails(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        for name in SUBCOMMANDS:
            assert name in err

    def test_help_lists_every_subcommand(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out

    def test_unknown_subcommand_fails(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_experiments_subcommand_delegates(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig-service" in out
        assert "fig-loss" in out

    def test_simtest_subcommand_delegates(self, capsys):
        assert main(["simtest", "--list-invariants"]) == 0
        assert "byte-conservation" in capsys.readouterr().out


class TestCommonOptions:
    def test_full_trio(self):
        parser = argparse.ArgumentParser()
        add_common_options(parser, transport_choices=("inproc", "udp"))
        args = parser.parse_args(["--seed", "7", "--workers", "3", "--transport", "udp"])
        assert args.seed == 7
        assert args.workers == 3
        assert args.transport == "udp"

    def test_defaults(self):
        parser = argparse.ArgumentParser()
        add_common_options(parser, transport_choices=("inproc", "udp"))
        args = parser.parse_args([])
        assert args.seed == 42
        assert args.workers == 1
        assert args.transport == "inproc"

    def test_pieces_are_optional(self):
        parser = argparse.ArgumentParser()
        add_common_options(parser, workers=False)
        args = parser.parse_args(["--seed", "1"])
        assert args.seed == 1
        assert not hasattr(args, "workers")
        assert not hasattr(args, "transport")


class TestDeprecatedShims:
    """The legacy module entry points still run, with a DeprecationWarning."""

    def test_simtest_module_shim(self):
        result = _run_module(["-m", "repro.simtest", "--list-invariants"])
        assert result.returncode == 0
        assert "byte-conservation" in result.stdout
        assert "DeprecationWarning" in result.stderr
        assert "python -m repro simtest" in result.stderr

    def test_experiments_module_shim(self):
        result = _run_module(["-m", "repro.experiments.cli", "--list"])
        assert result.returncode == 0
        assert "fig2" in result.stdout
        assert "DeprecationWarning" in result.stderr
        assert "python -m repro experiments" in result.stderr

    def test_perf_module_shim(self):
        result = _run_module(["-m", "benchmarks.perf", "--help"])
        assert result.returncode == 0
        assert "DeprecationWarning" in result.stderr
        assert "python -m repro perf" in result.stderr

    def test_service_module_shim(self):
        result = _run_module(["-m", "repro.service", "--help"])
        assert result.returncode == 0
        assert "--demo" in result.stdout
        assert "DeprecationWarning" in result.stderr
        assert "python -m repro service" in result.stderr


class TestServiceEndToEnd:
    def test_demo_completes_queries_and_prints_recall_and_bytes(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = _run_module(
            [
                "-m", "repro", "service", "--smoke",
                "--nodes", "15", "--queries", "2", "--seed", "5",
                "--deadline", "10", "--trace", str(trace),
            ],
            timeout=180,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "recall" in result.stdout
        assert "bytes on the wire" in result.stdout
        assert "invariants passed" in result.stdout
        assert trace.exists() and trace.stat().st_size > 0
