"""Round-trip property tests for the service-mode wire codec.

Contract (mirroring ``test_sizes_catalogue``): every concrete
:class:`~repro.simulator.transport.Message` subclass has a registered wire
encoding, ``decode(encode(m))`` reconstructs the message field by field,
and the decoded message prices identically under
:func:`repro.gossip.sizes.total_bytes` -- so service-mode byte accounting
agrees with the simulator's no matter which side of the wire does it.
The catalogue is enumerated from ``Message.__subclasses__``: adding a
message type without teaching the codec about it fails loudly here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.interning import intern_action
from repro.data.models import UserProfile
from repro.data.queries import Query
from repro.gossip.digest import ProfileDigest, make_digest
from repro.gossip.sizes import total_bytes
from repro.p3q.query import PartialResult
from repro.service.codec import WireCodec
from repro.simulator.transport import (
    VIEW_PERSONAL,
    VIEW_RANDOM,
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
)

CODEC = WireCodec()


# ------------------------------------------------------------------ builders


def _profile(num_actions: int, user_id: int = 1) -> UserProfile:
    return UserProfile(user_id, [(item, item + 100) for item in range(num_actions)])


def _digest(user_id: int, num_actions: int = 3) -> ProfileDigest:
    return make_digest(_profile(num_actions, user_id=user_id), num_bits=256, num_hashes=3)


def _query(num_tags: int = 2) -> Query:
    return Query(
        query_id=9, querier=1, tags=tuple(range(100, 100 + max(1, num_tags))), source_item=7
    )


def _partial(num_items: int, num_contributors: int) -> PartialResult:
    return PartialResult(
        query_id=9,
        sender=2,
        scores={item: float(item) + 0.5 for item in range(num_items)},
        contributors=tuple(range(num_contributors)),
        cycle=1,
    )


def _interned(num_actions: int) -> frozenset:
    return frozenset(intern_action(item, item + 100) for item in range(num_actions))


#: type -> strategy producing instances of exactly that type.  Every concrete
#: Message subclass MUST have an entry (enforced below).
STRATEGIES = {
    DigestAdvertisement: st.builds(
        DigestAdvertisement,
        digests=st.lists(
            st.integers(min_value=0, max_value=30).map(lambda uid: _digest(uid, 1 + uid % 4)),
            max_size=4,
        ).map(tuple),
        view=st.sampled_from([VIEW_RANDOM, VIEW_PERSONAL]),
    ),
    CommonItemsRequest: st.builds(
        CommonItemsRequest,
        subject_id=st.integers(min_value=0, max_value=1000),
        items=st.frozensets(st.integers(min_value=0, max_value=10_000), max_size=8),
    ),
    CommonItemsReply: st.builds(
        CommonItemsReply,
        subject_id=st.integers(min_value=0, max_value=1000),
        actions=st.one_of(
            st.none(), st.integers(min_value=0, max_value=8).map(_interned)
        ),
    ),
    FullProfileRequest: st.builds(
        FullProfileRequest, subject_id=st.integers(min_value=0, max_value=1000)
    ),
    FullProfilePush: st.builds(
        FullProfilePush,
        subject_id=st.integers(min_value=0, max_value=1000),
        profile=st.one_of(
            st.none(), st.integers(min_value=0, max_value=8).map(_profile)
        ),
    ),
    QueryForward: st.builds(
        QueryForward,
        query=st.integers(min_value=1, max_value=5).map(_query),
        remaining=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=8
        ).map(tuple),
        cycle=st.integers(min_value=0, max_value=100),
    ),
    RemainingReturn: st.builds(
        RemainingReturn,
        query_id=st.integers(min_value=0, max_value=1000),
        remaining=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=8
        ).map(tuple),
    ),
    QueryResult: st.builds(
        QueryResult,
        partial=st.tuples(
            st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
        ).map(lambda t: _partial(*t)),
    ),
}


def _catalogue():
    """Concrete Message subclasses of the transport module itself.

    ``@dataclass(slots=True)`` rebuilds each class, so ``__subclasses__``
    can still list the discarded pre-slots shell until it is collected;
    the identity check against the module attribute keeps only the
    canonical class objects.
    """
    from repro.simulator import transport

    return {
        cls
        for cls in Message.__subclasses__()
        if cls.__module__ == "repro.simulator.transport"
        and getattr(transport, cls.__name__, None) is cls
    }


# -------------------------------------------------------------- equivalence


def _assert_digest_equal(left: ProfileDigest, right: ProfileDigest) -> None:
    assert left.user_id == right.user_id
    assert left.version == right.version
    assert left.bloom.num_bits == right.bloom.num_bits
    assert left.bloom.num_hashes == right.bloom.num_hashes
    assert left.bloom.raw_bits == right.bloom.raw_bits
    assert left.bloom.approximate_count == right.bloom.approximate_count


def _assert_profile_equal(left: UserProfile, right: UserProfile) -> None:
    assert left.user_id == right.user_id
    assert left.version == right.version
    assert left.actions == right.actions


def assert_message_equal(left: Message, right: Message) -> None:
    assert type(left) is type(right)
    if isinstance(left, DigestAdvertisement):
        assert left.view == right.view
        assert len(left.digests) == len(right.digests)
        for a, b in zip(left.digests, right.digests):
            _assert_digest_equal(a, b)
    elif isinstance(left, FullProfilePush):
        assert left.subject_id == right.subject_id
        assert (left.profile is None) == (right.profile is None)
        if left.profile is not None:
            _assert_profile_equal(left.profile, right.profile)
    else:
        # Frozen dataclasses of hashable primitives (and PartialResult,
        # whose dataclass equality is field-wise over dict/tuple).
        assert left == right


# -------------------------------------------------------------------- tests


class TestCatalogueCoverage:
    def test_every_message_type_has_a_strategy(self):
        assert _catalogue() == set(STRATEGIES)

    def test_codec_registry_covers_the_catalogue(self):
        from repro.service import codec as codec_module

        assert _catalogue() == set(codec_module._ENCODERS)
        tags = {tag for tag, _ in codec_module._ENCODERS.values()}
        assert tags == set(codec_module._DECODERS)
        assert len(tags) == len(codec_module._ENCODERS), "wire tags must be unique"

    def test_unregistered_message_type_fails_loudly(self):
        class Bogus(Message):
            __slots__ = ()

        with pytest.raises(TypeError, match="Bogus"):
            CODEC.encode_message(Bogus())

    def test_unknown_tag_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown wire message tag"):
            CODEC.decode_message({"t": "nope"})


@pytest.mark.parametrize("message_type", sorted(STRATEGIES, key=lambda c: c.__name__))
def test_round_trip_preserves_fields_and_price(message_type):
    @settings(max_examples=25, deadline=None)
    @given(message=STRATEGIES[message_type])
    def check(message):
        body = CODEC.encode_message(message)
        decoded = CODEC.decode_message(CODEC.unframe(CODEC.frame(body)))
        assert_message_equal(message, decoded)
        assert total_bytes(decoded) == total_bytes(message)

    check()


class TestFrameLayer:
    def test_feed_reassembles_partial_stream(self):
        frames = [CODEC.frame({"n": i}) for i in range(3)]
        stream = b"".join(frames)
        # Split mid-frame: nothing decodes until the frame completes.
        head, tail = stream[:5], stream[5:]
        bodies, rest = CODEC.feed(head)
        assert bodies == [] and rest == head
        bodies, rest = CODEC.feed(rest + tail)
        assert bodies == [{"n": 0}, {"n": 1}, {"n": 2}]
        assert rest == b""

    def test_unframe_rejects_truncation(self):
        frame = CODEC.frame({"n": 1})
        with pytest.raises(ValueError, match="length mismatch"):
            CODEC.unframe(frame[:-1])


class TestRuntimeFrames:
    def test_request_frame_round_trip(self):
        envelope = Envelope(
            sender=3,
            receiver=4,
            message=QueryForward(query=_query(), remaining=(5, 6), cycle=2),
            query_id=9,
            expects_reply=True,
            account=True,
        )
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_request(envelope, rpc_id=17)))
        assert decoded["op"] == "req" and decoded["rpc"] == 17
        assert decoded["envelope"] == envelope

    def test_reply_frame_round_trip(self):
        reply = RemainingReturn(query_id=9, remaining=(1, 2))
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_reply(17, "delivered", reply)))
        assert decoded["op"] == "rep" and decoded["rpc"] == 17
        assert decoded["st"] == "delivered"
        assert decoded["m"] == reply

    def test_none_reply_frame(self):
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_reply(17, "delivered", None)))
        assert decoded["m"] is None

    def test_send_frame_round_trip(self):
        envelope = Envelope(
            sender=2,
            receiver=1,
            message=QueryResult(partial=_partial(2, 1)),
            query_id=9,
            expects_reply=False,
            account=True,
        )
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_send(envelope)))
        assert decoded["op"] == "send"
        assert decoded["envelope"].sender == 2
        assert decoded["envelope"].expects_reply is False
        assert_message_equal(decoded["envelope"].message, envelope.message)
