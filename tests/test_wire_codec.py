"""Round-trip property tests for the service-mode wire codec.

Contract (mirroring ``test_sizes_catalogue``): every concrete
:class:`~repro.simulator.transport.Message` subclass has a registered wire
encoding, ``decode(encode(m))`` reconstructs the message field by field,
and the decoded message prices identically under
:func:`repro.gossip.sizes.total_bytes` -- so service-mode byte accounting
agrees with the simulator's no matter which side of the wire does it.
The catalogue is enumerated from ``Message.__subclasses__``: adding a
message type without teaching the codec about it fails loudly here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.interning import intern_action
from repro.data.models import UserProfile
from repro.data.queries import Query
from repro.gossip.digest import ProfileDigest, make_digest
from repro.gossip.sizes import total_bytes
from repro.p3q.query import PartialResult
from repro.service.codec import BinaryWireCodec, WireCodec, make_codec, split_frames
from repro.simulator.transport import (
    VIEW_PERSONAL,
    VIEW_RANDOM,
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
)

CODEC = WireCodec()


# ------------------------------------------------------------------ builders


def _profile(num_actions: int, user_id: int = 1) -> UserProfile:
    return UserProfile(user_id, [(item, item + 100) for item in range(num_actions)])


def _digest(user_id: int, num_actions: int = 3) -> ProfileDigest:
    return make_digest(_profile(num_actions, user_id=user_id), num_bits=256, num_hashes=3)


def _query(num_tags: int = 2) -> Query:
    return Query(
        query_id=9, querier=1, tags=tuple(range(100, 100 + max(1, num_tags))), source_item=7
    )


def _partial(num_items: int, num_contributors: int) -> PartialResult:
    return PartialResult(
        query_id=9,
        sender=2,
        scores={item: float(item) + 0.5 for item in range(num_items)},
        contributors=tuple(range(num_contributors)),
        cycle=1,
    )


def _interned(num_actions: int) -> frozenset:
    return frozenset(intern_action(item, item + 100) for item in range(num_actions))


#: type -> strategy producing instances of exactly that type.  Every concrete
#: Message subclass MUST have an entry (enforced below).
STRATEGIES = {
    DigestAdvertisement: st.builds(
        DigestAdvertisement,
        digests=st.lists(
            st.integers(min_value=0, max_value=30).map(lambda uid: _digest(uid, 1 + uid % 4)),
            max_size=4,
        ).map(tuple),
        view=st.sampled_from([VIEW_RANDOM, VIEW_PERSONAL]),
    ),
    CommonItemsRequest: st.builds(
        CommonItemsRequest,
        subject_id=st.integers(min_value=0, max_value=1000),
        items=st.frozensets(st.integers(min_value=0, max_value=10_000), max_size=8),
    ),
    CommonItemsReply: st.builds(
        CommonItemsReply,
        subject_id=st.integers(min_value=0, max_value=1000),
        actions=st.one_of(
            st.none(), st.integers(min_value=0, max_value=8).map(_interned)
        ),
    ),
    FullProfileRequest: st.builds(
        FullProfileRequest, subject_id=st.integers(min_value=0, max_value=1000)
    ),
    FullProfilePush: st.builds(
        FullProfilePush,
        subject_id=st.integers(min_value=0, max_value=1000),
        profile=st.one_of(
            st.none(), st.integers(min_value=0, max_value=8).map(_profile)
        ),
    ),
    QueryForward: st.builds(
        QueryForward,
        query=st.integers(min_value=1, max_value=5).map(_query),
        remaining=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=8
        ).map(tuple),
        cycle=st.integers(min_value=0, max_value=100),
    ),
    RemainingReturn: st.builds(
        RemainingReturn,
        query_id=st.integers(min_value=0, max_value=1000),
        remaining=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=8
        ).map(tuple),
    ),
    QueryResult: st.builds(
        QueryResult,
        partial=st.tuples(
            st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
        ).map(lambda t: _partial(*t)),
    ),
}


def _catalogue():
    """Concrete Message subclasses of the transport module itself.

    ``@dataclass(slots=True)`` rebuilds each class, so ``__subclasses__``
    can still list the discarded pre-slots shell until it is collected;
    the identity check against the module attribute keeps only the
    canonical class objects.
    """
    from repro.simulator import transport

    return {
        cls
        for cls in Message.__subclasses__()
        if cls.__module__ == "repro.simulator.transport"
        and getattr(transport, cls.__name__, None) is cls
    }


# -------------------------------------------------------------- equivalence


def _assert_digest_equal(left: ProfileDigest, right: ProfileDigest) -> None:
    assert left.user_id == right.user_id
    assert left.version == right.version
    assert left.bloom.num_bits == right.bloom.num_bits
    assert left.bloom.num_hashes == right.bloom.num_hashes
    assert left.bloom.raw_bits == right.bloom.raw_bits
    assert left.bloom.approximate_count == right.bloom.approximate_count


def _assert_profile_equal(left: UserProfile, right: UserProfile) -> None:
    assert left.user_id == right.user_id
    assert left.version == right.version
    assert left.actions == right.actions


def assert_message_equal(left: Message, right: Message) -> None:
    assert type(left) is type(right)
    if isinstance(left, DigestAdvertisement):
        assert left.view == right.view
        assert len(left.digests) == len(right.digests)
        for a, b in zip(left.digests, right.digests):
            _assert_digest_equal(a, b)
    elif isinstance(left, FullProfilePush):
        assert left.subject_id == right.subject_id
        assert (left.profile is None) == (right.profile is None)
        if left.profile is not None:
            _assert_profile_equal(left.profile, right.profile)
    else:
        # Frozen dataclasses of hashable primitives (and PartialResult,
        # whose dataclass equality is field-wise over dict/tuple).
        assert left == right


# -------------------------------------------------------------------- tests


class TestCatalogueCoverage:
    def test_every_message_type_has_a_strategy(self):
        assert _catalogue() == set(STRATEGIES)

    def test_codec_registry_covers_the_catalogue(self):
        from repro.service import codec as codec_module

        assert _catalogue() == set(codec_module._ENCODERS)
        tags = {tag for tag, _ in codec_module._ENCODERS.values()}
        assert tags == set(codec_module._DECODERS)
        assert len(tags) == len(codec_module._ENCODERS), "wire tags must be unique"

    def test_unregistered_message_type_fails_loudly(self):
        class Bogus(Message):
            __slots__ = ()

        with pytest.raises(TypeError, match="Bogus"):
            CODEC.encode_message(Bogus())

    def test_unknown_tag_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown wire message tag"):
            CODEC.decode_message({"t": "nope"})


@pytest.mark.parametrize("message_type", sorted(STRATEGIES, key=lambda c: c.__name__))
def test_round_trip_preserves_fields_and_price(message_type):
    @settings(max_examples=25, deadline=None)
    @given(message=STRATEGIES[message_type])
    def check(message):
        body = CODEC.encode_message(message)
        decoded = CODEC.decode_message(CODEC.unframe(CODEC.frame(body)))
        assert_message_equal(message, decoded)
        assert total_bytes(decoded) == total_bytes(message)

    check()


class TestFrameLayer:
    def test_feed_reassembles_partial_stream(self):
        frames = [CODEC.frame({"n": i}) for i in range(3)]
        stream = b"".join(frames)
        # Split mid-frame: nothing decodes until the frame completes.
        head, tail = stream[:5], stream[5:]
        bodies, rest = CODEC.feed(head)
        assert bodies == [] and rest == head
        bodies, rest = CODEC.feed(rest + tail)
        assert bodies == [{"n": 0}, {"n": 1}, {"n": 2}]
        assert rest == b""

    def test_unframe_rejects_truncation(self):
        frame = CODEC.frame({"n": 1})
        with pytest.raises(ValueError, match="length mismatch"):
            CODEC.unframe(frame[:-1])


class TestRuntimeFrames:
    def test_request_frame_round_trip(self):
        envelope = Envelope(
            sender=3,
            receiver=4,
            message=QueryForward(query=_query(), remaining=(5, 6), cycle=2),
            query_id=9,
            expects_reply=True,
            account=True,
        )
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_request(envelope, rpc_id=17)))
        assert decoded["op"] == "req" and decoded["rpc"] == 17
        assert decoded["envelope"] == envelope

    def test_reply_frame_round_trip(self):
        reply = RemainingReturn(query_id=9, remaining=(1, 2))
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_reply(17, "delivered", reply)))
        assert decoded["op"] == "rep" and decoded["rpc"] == 17
        assert decoded["st"] == "delivered"
        assert decoded["m"] == reply

    def test_none_reply_frame(self):
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_reply(17, "delivered", None)))
        assert decoded["m"] is None

    def test_send_frame_round_trip(self):
        envelope = Envelope(
            sender=2,
            receiver=1,
            message=QueryResult(partial=_partial(2, 1)),
            query_id=9,
            expects_reply=False,
            account=True,
        )
        decoded = CODEC.decode(CODEC.unframe(CODEC.encode_send(envelope)))
        assert decoded["op"] == "send"
        assert decoded["envelope"].sender == 2
        assert decoded["envelope"].expects_reply is False
        assert_message_equal(decoded["envelope"].message, envelope.message)


# ------------------------------------------------------------- binary codec


class TestBinaryCatalogueCoverage:
    def test_binary_registry_matches_json_registry(self):
        from repro.service import codec as codec_module

        assert set(codec_module._BIN_ENCODERS) == set(codec_module._ENCODERS)
        tags = {tag for tag, _ in codec_module._BIN_ENCODERS.values()}
        assert tags == set(codec_module._BIN_DECODERS)
        assert len(tags) == len(codec_module._BIN_ENCODERS), "tags must be unique"

    def test_unregistered_message_type_fails_loudly(self):
        class Bogus(Message):
            __slots__ = ()

        with pytest.raises(TypeError, match="Bogus"):
            BinaryWireCodec().encode_message(Bogus())

    def test_unknown_tag_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown binary wire message tag"):
            BinaryWireCodec().decode_message(bytes([0xEE]))

    def test_make_codec_registry(self):
        assert isinstance(make_codec("json"), WireCodec)
        assert isinstance(make_codec("binary"), BinaryWireCodec)
        with pytest.raises(ValueError, match="codec"):
            make_codec("protobuf")


@pytest.mark.parametrize("message_type", sorted(STRATEGIES, key=lambda c: c.__name__))
def test_cross_codec_equivalence(message_type):
    """Satellite: both codecs decode to equal messages with equal pricing.

    Fresh binary codec instances per example keep digest suppression out
    of the picture: this is the pure encoding contract.
    """

    @settings(max_examples=25, deadline=None)
    @given(message=STRATEGIES[message_type])
    def check(message):
        binary = BinaryWireCodec()
        body = binary.encode_message(message)
        from_binary = BinaryWireCodec().decode_message(body)
        from_json = CODEC.decode_message(CODEC.encode_message(message))
        assert_message_equal(message, from_binary)
        assert_message_equal(from_json, from_binary)
        assert total_bytes(from_binary) == total_bytes(message)
        assert total_bytes(from_json) == total_bytes(from_binary)

    check()


class TestBinaryRuntimeFrames:
    def test_request_frame_round_trip(self):
        codec = BinaryWireCodec()
        envelope = Envelope(
            sender=3,
            receiver=4,
            message=QueryForward(query=_query(), remaining=(5, 6), cycle=2),
            query_id=9,
            expects_reply=True,
            account=True,
        )
        bodies, leftover = codec.split(codec.encode_request(envelope, rpc_id=17))
        assert leftover == b"" and len(bodies) == 1
        decoded = BinaryWireCodec().decode_body(bodies[0])
        assert decoded["op"] == "req" and decoded["rpc"] == 17
        assert decoded["envelope"] == envelope

    def test_reply_frame_round_trip(self):
        codec = BinaryWireCodec()
        reply = RemainingReturn(query_id=9, remaining=(1, 2))
        bodies, _ = codec.split(codec.encode_reply(17, "delivered", reply))
        decoded = BinaryWireCodec().decode_body(bodies[0])
        assert decoded["op"] == "rep" and decoded["rpc"] == 17
        assert decoded["st"] == "delivered"
        assert decoded["m"] == reply

    def test_none_reply_frame(self):
        codec = BinaryWireCodec()
        bodies, _ = codec.split(codec.encode_reply(17, "dropped", None))
        decoded = BinaryWireCodec().decode_body(bodies[0])
        assert decoded["m"] is None and decoded["st"] == "dropped"

    def test_send_frame_round_trip_negative_ids(self):
        codec = BinaryWireCodec()
        envelope = Envelope(
            sender=-2,
            receiver=-1,
            message=QueryResult(partial=_partial(2, 1)),
            query_id=-9,
            expects_reply=False,
            account=False,
        )
        bodies, _ = codec.split(codec.encode_send(envelope))
        decoded = BinaryWireCodec().decode_body(bodies[0])
        assert decoded["op"] == "send"
        assert decoded["envelope"].sender == -2
        assert decoded["envelope"].receiver == -1
        assert decoded["envelope"].query_id == -9
        assert decoded["envelope"].account is False


class TestBinaryMalformedFrames:
    """Satellite fuzz cases: every malformed shape drops loudly, never hangs."""

    def _one_body(self, frame):
        bodies, leftover = split_frames(frame)
        assert leftover == b""
        return bodies[0]

    def test_truncated_header(self):
        codec = BinaryWireCodec()
        frame = codec.encode_request(
            Envelope(1, 2, FullProfileRequest(subject_id=3), None, True, True), 5
        )
        body = self._one_body(frame)
        for cut in range(len(body)):
            with pytest.raises(ValueError):
                BinaryWireCodec().decode_body(body[:cut])

    def test_bad_op_and_bad_tag(self):
        with pytest.raises(ValueError, match="unknown binary frame op"):
            BinaryWireCodec().decode_body(bytes([0x7F]))
        with pytest.raises(ValueError, match="empty frame body"):
            BinaryWireCodec().decode_body(b"")
        # op=send, sender=0, receiver=0, flags=0, message tag 0xEE.
        with pytest.raises(ValueError, match="unknown binary wire message tag"):
            BinaryWireCodec().decode_body(bytes([0x03, 0x00, 0x00, 0x00, 0xEE]))

    def test_oversized_length_claims(self):
        # A digest claiming a multi-gigabyte row must be refused before any
        # allocation happens.
        evil = bytearray([0x01])  # DigestAdvertisement tag
        evil += bytes([0x00])  # view=random
        evil += bytes([0x01])  # one digest
        evil += bytes([0x00])  # marker: full row
        evil += bytes([0x00, 0x00])  # user_id=0, version=0
        evil += b"\xff\xff\xff\xff\x7f"  # num_bits varint ~= 2**34
        with pytest.raises(ValueError, match="num_bits"):
            BinaryWireCodec().decode_message(bytes(evil))
        # A sequence length beyond the wire bound fails the same way.
        evil2 = bytearray([0x02, 0x00])  # CommonItemsRequest, subject=0
        evil2 += b"\xff\xff\xff\xff\x7f"  # item count ~= 2**34
        with pytest.raises(ValueError, match="sequence length"):
            BinaryWireCodec().decode_message(bytes(evil2))

    def test_unbounded_varint_rejected(self):
        with pytest.raises(ValueError, match="varint"):
            BinaryWireCodec().decode_message(bytes([0x04]) + b"\xff" * 12)

    def test_trailing_bytes_rejected(self):
        codec = BinaryWireCodec()
        body = codec.encode_message(FullProfileRequest(subject_id=3))
        with pytest.raises(ValueError, match="trailing"):
            BinaryWireCodec().decode_message(body + b"\x00")

    def test_bad_status_index(self):
        codec = BinaryWireCodec()
        body = self._one_body(codec.encode_reply(1, "delivered", None))
        evil = bytearray(body)
        evil[-2] = 0xEE  # the status byte
        with pytest.raises(ValueError, match="status index"):
            BinaryWireCodec().decode_body(bytes(evil))


class TestDigestSuppression:
    def _advertisement(self):
        return DigestAdvertisement(digests=(_digest(1), _digest(2)), view=VIEW_PERSONAL)

    def _envelope(self, message, receiver=7):
        return Envelope(1, receiver, message, None, False, True)

    def test_committed_digests_travel_as_references(self):
        sender = BinaryWireCodec()
        adv = self._advertisement()
        first = sender.encode_send(self._envelope(adv))
        sender.commit_sent(7)
        second = sender.encode_send(self._envelope(adv))
        assert len(second) < len(first) / 2

        receiver = BinaryWireCodec()
        for frame in (first, second):
            bodies, _ = receiver.split(frame)
            decoded = receiver.decode_body(bodies[0])
            assert_message_equal(decoded["m"], adv)

    def test_uncommitted_sends_are_not_suppressed(self):
        sender = BinaryWireCodec()
        adv = self._advertisement()
        first = sender.encode_send(self._envelope(adv))
        sender.abort_sent(7)  # the wire refused the frame
        second = sender.encode_send(self._envelope(adv))
        assert len(second) == len(first)

    def test_suppression_is_per_receiver(self):
        sender = BinaryWireCodec()
        adv = self._advertisement()
        sender.encode_send(self._envelope(adv, receiver=7))
        sender.commit_sent(7)
        to_other = sender.encode_send(self._envelope(adv, receiver=8))
        fresh = BinaryWireCodec()
        bodies, _ = fresh.split(to_other)
        assert_message_equal(fresh.decode_body(bodies[0])["m"], adv)

    def test_unresolvable_reference_fails_loudly(self):
        sender = BinaryWireCodec()
        adv = self._advertisement()
        sender.encode_send(self._envelope(adv))
        sender.commit_sent(7)
        ref_frame = sender.encode_send(self._envelope(adv))
        never_seeded = BinaryWireCodec()
        bodies, _ = never_seeded.split(ref_frame)
        with pytest.raises(ValueError, match="digest reference"):
            never_seeded.decode_body(bodies[0])

    def test_new_version_ships_a_full_row(self):
        sender = BinaryWireCodec()
        profile = _profile(3, user_id=1)
        adv1 = DigestAdvertisement(
            digests=(make_digest(profile, num_bits=256, num_hashes=3),),
            view=VIEW_PERSONAL,
        )
        sender.encode_send(self._envelope(adv1))
        sender.commit_sent(7)
        profile.add(50, 150)  # bumps the version
        adv2 = DigestAdvertisement(
            digests=(make_digest(profile, num_bits=256, num_hashes=3),),
            view=VIEW_PERSONAL,
        )
        frame = sender.encode_send(self._envelope(adv2))
        fresh = BinaryWireCodec()
        bodies, _ = fresh.split(frame)
        assert_message_equal(fresh.decode_body(bodies[0])["m"], adv2)


class TestSplitFrames:
    def test_splits_batched_frames(self):
        codec = BinaryWireCodec()
        frames = [
            codec.encode_send(
                Envelope(1, 2, FullProfileRequest(subject_id=i), None, False, True)
            )
            for i in range(3)
        ]
        bodies, leftover = split_frames(b"".join(frames))
        assert len(bodies) == 3 and leftover == b""

    def test_garbage_prefix_is_leftover(self):
        bodies, leftover = split_frames(b"\xffnot-a-frame")
        assert bodies == [] and leftover == b"\xffnot-a-frame"

    def test_truncated_tail_is_leftover(self):
        codec = BinaryWireCodec()
        frame = codec.encode_send(
            Envelope(1, 2, FullProfileRequest(subject_id=3), None, False, True)
        )
        payload = frame + frame[: len(frame) // 2]
        bodies, leftover = split_frames(payload)
        assert len(bodies) == 1
        assert leftover == frame[: len(frame) // 2]


class TestProfileFromState:
    """Satellite: replica-freshness (the live version) survives round-trips."""

    def _versioned_profile(self):
        profile = UserProfile(4, [(1, 101), (2, 102)])
        profile.add(3, 103)
        profile.add(4, 104)
        assert profile.version > len(profile.actions) - 2
        return profile

    def test_from_state_restores_version(self):
        profile = self._versioned_profile()
        rebuilt = UserProfile.from_state(4, profile.actions, profile.version)
        assert rebuilt.version == profile.version
        assert rebuilt.actions == profile.actions

    def test_from_state_rejects_negative_version(self):
        with pytest.raises(ValueError, match="version"):
            UserProfile.from_state(4, [(1, 101)], -1)

    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    def test_version_survives_codec_round_trip(self, codec_name):
        profile = self._versioned_profile()
        codec = make_codec(codec_name)
        push = FullProfilePush(subject_id=4, profile=profile)
        if codec_name == "json":
            decoded = codec.decode_message(codec.encode_message(push))
        else:
            decoded = BinaryWireCodec().decode_message(codec.encode_message(push))
        assert decoded.profile.version == profile.version
        assert decoded.profile.actions == profile.actions
